"""Point-to-point fiber link model.

A :class:`Link` is a unidirectional pipe with finite bandwidth and a
fixed propagation delay.  Cells are serialized: each occupies the link
for ``53 * 8 / bandwidth`` seconds, and back-to-back cells pipeline (the
paper's ~6 us/cell round-trip increment is two link serializations).

A loss function can be attached to model the dropped-cell scenarios of
§7.8; dropping any cell of an AAL5 PDU kills the whole PDU downstream.

The link is modelled *analytically*: instead of a pump process that
wakes up once per cell, admission and serialization times are computed
in closed form when a cell is claimed, and only the externally visible
occurrences (serialization end when a loss function needs to see it,
delivery at the far end) are scheduled — as bare callbacks, not events.
A whole AAL5 cell train submitted via :meth:`put_train` costs a single
heap entry when the receiving end is train-aware.  The timestamps are
identical to per-cell simulation (``fast_path=False`` forces the
per-cell schedule and is asserted equal in tests).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Sequence

from repro import obs
from repro.atm.cell import Cell
from repro.obs import metrics as _metrics
from repro.sim import Event, Simulator, Tracer
from repro.sim import batch as _batch
from repro.sim import engine as _engine
from repro.sim.shard.errors import ShardError

#: 140 Mbit/s TAXI fiber used throughout the paper's testbed.
TAXI_140_BPS = 140_000_000.0
#: Classic 10 Mbit/s Ethernet, for the Figure 6 baseline.
ETHERNET_10_BPS = 10_000_000.0

#: Process-wide default for the analytic train fast path; the A/B
#: equivalence tests flip this to compare against per-cell scheduling.
FAST_PATH_DEFAULT = True


class CellTrain:
    """A back-to-back burst of cells with an analytic arrival schedule.

    Cell ``i`` arrives at ``arrivals_us[i]``.  Train-aware sinks (the
    switch input, the NI receive FIFO) accept the whole train in one
    heap entry and expand it themselves; everyone else receives plain
    per-cell deliveries.  The arrival floats are exactly the ones the
    per-cell path would schedule, so expansion is bit-identical to
    per-cell simulation.
    """

    __slots__ = ("cells", "arrivals_us")

    def __init__(self, cells: List[Cell], arrivals_us: List[float]):
        self.cells = cells
        self.arrivals_us = arrivals_us

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def first_us(self) -> float:
        return self.arrivals_us[0]


class Link:
    """Unidirectional serialized link delivering cells to a sink callable."""

    __slots__ = (
        "sim",
        "bandwidth_bps",
        "propagation_us",
        "name",
        "tracer",
        "loss_fn",
        "_sink",
        "_train_sink",
        "capacity",
        "fast_path",
        "cells_sent",
        "cells_dropped",
        "bytes_sent",
        "trains_sent",
        "_busy_until",
        "_starts",
        "_cut",
        "remote_peer",
        "_k_txq_drop",
        "_k_loss",
        "_mk_txq",
        "_mk_busy",
        "_mk_drop",
    )

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = TAXI_140_BPS,
        propagation_us: float = 0.3,
        name: str = "link",
        tracer: Optional[Tracer] = None,
        loss_fn: Optional[Callable[[Cell], bool]] = None,
        queue_cells: float = float("inf"),
        fast_path: Optional[bool] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_us < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.propagation_us = propagation_us
        self.name = name
        self.tracer = tracer if tracer is not None else Tracer()
        self.loss_fn = loss_fn
        self._sink: Optional[Callable[[Cell], None]] = None
        self._train_sink: Optional[Callable[[CellTrain], None]] = None
        self.capacity = queue_cells
        self.fast_path = FAST_PATH_DEFAULT if fast_path is None else fast_path
        self.cells_sent = 0
        self.cells_dropped = 0
        self.bytes_sent = 0
        self.trains_sent = 0
        # Analytic serialization state: when the wire frees up, and the
        # serialization-start time of every claimed-but-unstarted cell
        # (pruned lazily; a cell whose serialization has started is "in
        # service", not queued, exactly like the old pump's Store).
        self._busy_until = 0.0
        self._starts: deque = deque()
        # Cut-edge state: when this link crosses a shard boundary, final
        # deliveries are routed through ``_cut`` (a channel) instead of
        # being scheduled locally, and ``remote_peer`` is a stub that
        # refuses attribute access (the far end is not coherent here).
        self._cut = None
        self.remote_peer = None
        # Tracer keys are built once here: send()/_finish_cell() run per
        # cell on the event hot path and must not re-format strings.
        self._k_txq_drop = f"{name}.txq_drop"
        self._k_loss = f"{name}.loss"
        # Metric keys likewise: the guarded metric calls in _claim()/
        # send() must not pay per-cell string formatting.
        self._mk_txq = f"link.{name}.txq_depth"
        self._mk_busy = f"link.{name}.busy_us"
        self._mk_drop = f"link.{name}.drops"

    # -- shard cut ------------------------------------------------------
    def cut_lookahead_us(self) -> float:
        """Delivery-time bound this link guarantees across a cut.

        On the analytic fast path the emitting event *is* the sender's
        claim, and the delivery it schedules lands at least one cell
        serialization plus the propagation delay later.  With a loss
        function (or ``fast_path=False``) the serialization end is its
        own event and only the propagation delay separates it from the
        delivery — the lookahead a cut edge may promise shrinks to that.
        """
        if self.loss_fn is None and self.fast_path:
            return self.cell_time_us(53) + self.propagation_us
        return self.propagation_us

    def bind_cut(self, channel) -> None:
        """Route this link's deliveries through a cross-shard channel.

        The channel's registered edge must not promise more lookahead
        than the link's current configuration guarantees — a too-large
        promise would let the coordinator grant unsafe windows.
        """
        if self._cut is not None:
            raise ShardError(f"link {self.name!r} is already bound to a cut")
        if channel.edge.lookahead_us > self.cut_lookahead_us() + 1e-12:
            raise ShardError(
                f"cut edge {channel.edge.name!r} promises "
                f"{channel.edge.lookahead_us} us lookahead but link "
                f"{self.name!r} only guarantees {self.cut_lookahead_us()} us"
            )
        self._cut = channel
        self.remote_peer = channel.stub

    def connect(
        self,
        sink: Callable[[Cell], None],
        train_sink: Optional[Callable[[CellTrain], None]] = None,
    ) -> None:
        """Attach the receiving end; must be called before traffic flows.

        ``train_sink``, when given, receives whole :class:`CellTrain`
        batches from :meth:`put_train` in one event instead of per-cell
        deliveries."""
        self._sink = sink
        self._train_sink = train_sink

    def set_queue_capacity(self, cells: float) -> None:
        """Resize the transmit queue (NI models bound it to their FIFO depth)."""
        if cells <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = cells

    def cell_time_us(self, wire_bytes: int = 53) -> float:
        return wire_bytes * 8 / self.bandwidth_bps * 1e6

    # -- admission ------------------------------------------------------
    def _prune(self) -> None:
        now = self.sim._now
        starts = self._starts
        while starts and starts[0] <= now:
            starts.popleft()

    def _claim(self, cell: Cell) -> float:
        """Claim the next serialization slot; returns the finish time."""
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"link:{self.name}", "w")
        now = self.sim._now
        start = self._busy_until
        if start < now:
            start = now
        finish = start + self.cell_time_us(cell.wire_bytes)
        self._busy_until = finish
        self._starts.append(start)
        _o = obs.active
        if _o is not None:
            # The link is analytic, so wire occupancy is known in closed
            # form at claim time: serialization plus propagation.  (On
            # lossy links a claimed cell may still be dropped at the
            # serialization end; the span then overstates by one flight.)
            _o.add_complete(
                start, finish + self.propagation_us, "cell", "wire", host=self.name
            )
        _m = _metrics.active
        if _m is not None:
            # busy_us accumulates serialization time; dividing by the
            # span of the run gives link utilization in the report.
            _m.observe(self._mk_txq, len(self._starts))
            _m.count(self._mk_busy, finish - start)
        return finish

    def _schedule_cell(self, cell: Cell, finish: float) -> None:
        sim = self.sim
        if self.loss_fn is not None or not self.fast_path:
            # Per-cell path: the serialization end is observable (loss
            # decision, counters) and must fire at the right sim time.
            sim.schedule_callback_at(finish, self._finish_cell, cell)
        else:
            self.cells_sent += 1
            self.bytes_sent += cell.wire_bytes
            if self._cut is not None:
                self._cut.send_cell(finish + self.propagation_us, cell)
            else:
                sim.schedule_callback_at(
                    finish + self.propagation_us, self._deliver_cell, cell
                )

    # -- producer API ---------------------------------------------------
    def send(self, cell: Cell) -> bool:
        """Enqueue a cell for transmission.

        Returns False if the transmit queue overflowed (cell dropped).
        """
        self._prune()
        if len(self._starts) >= self.capacity:
            if _engine.access_hook is not None:
                _engine.access_hook(id(self), f"link:{self.name}", "r")
            self.cells_dropped += 1
            self.tracer.count(self._k_txq_drop)
            _m = _metrics.active
            if _m is not None:
                _m.count(self._mk_drop)
            return False
        self._schedule_cell(cell, self._claim(cell))
        return True

    def put(self, cell: Cell) -> Event:
        """Blocking enqueue: returns an event that triggers once the cell
        fits in the transmit queue.  Used by NI models that pace
        themselves to the wire instead of dropping."""
        self._prune()
        sim = self.sim
        event = Event(sim)
        queued = len(self._starts)
        if queued < self.capacity:
            self._schedule_cell(cell, self._claim(cell))
            event.succeed()
        else:
            # The cell is admitted the instant the head-of-queue cell
            # ahead of it starts serializing and frees a queue slot.
            # Triggered at the exact analytic float, not now + delta.
            admit = self._starts[queued - int(self.capacity)]
            self._schedule_cell(cell, self._claim(cell))
            event._ok = True
            sim._schedule_event_at(event, admit)
        return event

    def put_train(self, cells: Sequence[Cell]) -> Event:
        """Enqueue a back-to-back burst; triggers when the last cell has
        been admitted to the transmit queue (identical pacing to calling
        :meth:`put` per cell, computed in one pass).

        When the fast path is on, no loss function is attached, and the
        receiver is train-aware, the whole burst costs one heap entry.
        """
        sim = self.sim
        event = Event(sim)
        if not cells:
            return event.succeed()
        self._prune()
        starts = self._starts
        capacity = self.capacity
        last_admit = sim._now
        finishes = []
        for cell in cells:
            queued = len(starts)
            if queued >= capacity:
                admit = starts[queued - int(capacity)]
                if admit > last_admit:
                    last_admit = admit
            finishes.append(self._claim(cell))
        if self.loss_fn is not None or not self.fast_path:
            for cell, finish in zip(cells, finishes):
                sim.schedule_callback_at(finish, self._finish_cell, cell)
        else:
            self.cells_sent += len(cells)
            self.bytes_sent += sum(cell.wire_bytes for cell in cells)
            propagation = self.propagation_us
            if self._cut is not None:
                if len(cells) > 1:
                    # Whole burst in one channel record; the far side
                    # re-expands at the same analytic arrival floats.
                    self.trains_sent += 1
                    arrivals = [finish + propagation for finish in finishes]
                    self._cut.send_train(arrivals, list(cells))
                else:
                    self._cut.send_cell(finishes[0] + propagation, cells[0])
            elif self._train_sink is not None and len(cells) > 1:
                # One heap entry for the whole burst, carrying the exact
                # per-cell arrival floats the per-cell path would use.
                self.trains_sent += 1
                arrivals = [finish + propagation for finish in finishes]
                train = CellTrain(list(cells), arrivals)
                sim.schedule_callback_at(arrivals[0], self._deliver_train, train)
            else:
                for cell, finish in zip(cells, finishes):
                    sim.schedule_callback_at(
                        finish + propagation, self._deliver_cell, cell
                    )
        event._ok = True
        sim._schedule_event_at(event, last_admit)
        return event

    # -- scheduled occurrences -----------------------------------------
    def _finish_cell(self, cell: Cell) -> None:
        self.cells_sent += 1
        self.bytes_sent += cell.wire_bytes
        if self.loss_fn is not None and self.loss_fn(cell):
            self.cells_dropped += 1
            self.tracer.count(self._k_loss)
            _m = _metrics.active
            if _m is not None:
                _m.count(self._mk_drop)
            return
        if self._cut is not None:
            # Per-cell path across a cut: the emitting event is this
            # serialization end, so only the propagation delay separates
            # it from delivery.  A loss function attached *after* the
            # edge was bound would have let the edge promise the wider
            # fast-path lookahead — refuse rather than corrupt windows.
            if self._cut.edge.lookahead_us > self.propagation_us + 1e-12:
                raise ShardError(
                    f"link {self.name!r} entered the per-cell path but its "
                    f"cut edge promises {self._cut.edge.lookahead_us} us "
                    f"lookahead (> propagation {self.propagation_us} us); "
                    f"loss functions must be attached before the cut is bound"
                )
            self._cut.send_cell(self.sim._now + self.propagation_us, cell)
            return
        self.sim.schedule_callback(self.propagation_us, self._deliver_cell, cell)

    def _deliver_cell(self, cell: Cell) -> None:
        sink = self._sink
        if sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        sink(cell)

    def _deliver_train(self, train: CellTrain) -> None:
        train_sink = self._train_sink
        if train_sink is None:
            raise RuntimeError(f"link {self.name!r} has no sink connected")
        train_sink(train)


# Batch kernels (REPRO_SIM_BATCH): a run of back-to-back deliveries
# collapses into one bulk FIFO append, and a whole train expands through
# the switch analytically.  Lossy links, cut edges and fast_path=False
# never reach these entry kinds or fail the kernels' preconditions, so
# they keep the per-cell path.  Bit-identity with scalar dispatch is
# enforced by tests/sim/test_batch.py.
_batch.register(Link._deliver_cell, _batch.deliver_cell_kernel)
_batch.register(Link._deliver_train, _batch.deliver_train_kernel)
