"""Point-to-point fiber link model.

A :class:`Link` is a unidirectional pipe with finite bandwidth and a
fixed propagation delay.  Cells are serialized: each occupies the link
for ``53 * 8 / bandwidth`` seconds, and back-to-back cells pipeline (the
paper's ~6 us/cell round-trip increment is two link serializations).

A loss function can be attached to model the dropped-cell scenarios of
§7.8; dropping any cell of an AAL5 PDU kills the whole PDU downstream.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.atm.cell import Cell
from repro.sim import Simulator, Store, Tracer

#: 140 Mbit/s TAXI fiber used throughout the paper's testbed.
TAXI_140_BPS = 140_000_000.0
#: Classic 10 Mbit/s Ethernet, for the Figure 6 baseline.
ETHERNET_10_BPS = 10_000_000.0


class Link:
    """Unidirectional serialized link delivering cells to a sink callable."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = TAXI_140_BPS,
        propagation_us: float = 0.3,
        name: str = "link",
        tracer: Optional[Tracer] = None,
        loss_fn: Optional[Callable[[Cell], bool]] = None,
        queue_cells: float = float("inf"),
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_us < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.propagation_us = propagation_us
        self.name = name
        self.tracer = tracer or Tracer()
        self.loss_fn = loss_fn
        self._sink: Optional[Callable[[Cell], None]] = None
        self._queue = Store(sim, capacity=queue_cells, name=f"{name}.txq")
        self.cells_sent = 0
        self.cells_dropped = 0
        self.bytes_sent = 0
        sim.process(self._pump(), name=f"{name}.pump")

    def connect(self, sink: Callable[[Cell], None]) -> None:
        """Attach the receiving end; must be called before traffic flows."""
        self._sink = sink

    def set_queue_capacity(self, cells: float) -> None:
        """Resize the transmit queue (NI models bound it to their FIFO depth)."""
        if cells <= 0:
            raise ValueError("queue capacity must be positive")
        self._queue.capacity = cells

    def cell_time_us(self, wire_bytes: int = 53) -> float:
        return wire_bytes * 8 / self.bandwidth_bps * 1e6

    def put(self, cell: Cell):
        """Blocking enqueue: returns an event that triggers once the cell
        fits in the transmit queue.  Used by NI models that pace
        themselves to the wire instead of dropping."""
        return self._queue.put(cell)

    def send(self, cell: Cell) -> bool:
        """Enqueue a cell for transmission.

        Returns False if the transmit queue overflowed (cell dropped).
        """
        ok = self._queue.try_put(cell)
        if not ok:
            self.cells_dropped += 1
            self.tracer.count(f"{self.name}.txq_drop")
        return ok

    def _pump(self):
        sim = self.sim
        while True:
            cell = yield self._queue.get()
            # Serialization: the link is busy for the cell's wire time.
            yield sim.timeout(self.cell_time_us(cell.wire_bytes))
            self.cells_sent += 1
            self.bytes_sent += cell.wire_bytes
            if self.loss_fn is not None and self.loss_fn(cell):
                self.cells_dropped += 1
                self.tracer.count(f"{self.name}.loss")
                continue
            if self._sink is None:
                raise RuntimeError(f"link {self.name!r} has no sink connected")
            # Propagation: schedule delivery without blocking the pump.
            sim.process(self._deliver(cell), name=f"{self.name}.deliver")

    def _deliver(self, cell: Cell):
        yield self.sim.timeout(self.propagation_us)
        self._sink(cell)
