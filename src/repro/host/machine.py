"""The workstation: one CPU, memory-system costs, kernel overheads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.host.cpu import CpuModel, REFERENCE_MHZ
from repro.sim import Simulator, Tracer


@dataclass
class HostCosts:
    """Software cost constants at the 60 MHz reference clock.

    Each value is annotated with the paper evidence it is calibrated
    against; see DESIGN.md §4.
    """

    #: Memory-to-memory copy (~53 MB/s memcpy on the SS-20).  Derived
    #: from the UAM block-transfer slope (§5.2): 0.2 us/byte per round
    #: trip = 0.125 us/byte of wire time (two directions of ~6 us/cell)
    #: plus four copies -- two per one-way transfer -- of ~0.019 us/byte.
    copy_us_per_byte: float = 0.019
    #: Fixed cost to set up any copy (function call, loop prologue).
    copy_setup_us: float = 0.4
    #: Internet checksum: "1 us per 100 bytes on a SPARCstation-20" (§7.6).
    checksum_us_per_byte: float = 0.01
    #: Software AAL5 CRC-32 (SBA-100 path, Table 1 discussion: 33%/40% of
    #: the 7/5 us AAL5 send/receive overheads for a 48-byte cell).
    crc_us_per_byte: float = 0.048
    #: Hand-crafted fast trap into the kernel (§4.1: 28/43 instructions).
    fast_trap_us: float = 1.5
    #: A full SunOS system call.
    syscall_us: float = 15.0
    #: UNIX signal delivery ("adds approximately another 30 us on each
    #: end", §4.2.3).
    signal_us: float = 30.0
    #: Process context switch.
    context_switch_us: float = 25.0
    #: select()-style blocking wakeup overhead.
    select_wakeup_us: float = 20.0

    def copy_us(self, nbytes: int) -> float:
        if nbytes <= 0:
            return 0.0
        return self.copy_setup_us + nbytes * self.copy_us_per_byte

    def checksum_us(self, nbytes: int) -> float:
        return nbytes * self.checksum_us_per_byte

    def crc_us(self, nbytes: int) -> float:
        return nbytes * self.crc_us_per_byte


class Workstation:
    """A host: name, clocked CPU, cost table, and an attachment slot
    for a network interface."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mhz: float = REFERENCE_MHZ,
        costs: Optional[HostCosts] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.name = name
        self.cpu = CpuModel(sim, mhz=mhz, name=f"{name}.cpu")
        self.costs = costs if costs is not None else HostCosts()
        self.tracer = tracer if tracer is not None else Tracer()
        self.ni = None  # set by the NI model when attached

    @property
    def mhz(self) -> float:
        return self.cpu.mhz

    # -- cost helper generators (run on this host's CPU) ---------------
    def compute(self, us_at_reference: float):
        return self.cpu.compute(us_at_reference)

    def copy(self, nbytes: int):
        return self.cpu.compute(self.costs.copy_us(nbytes))

    def checksum(self, nbytes: int):
        return self.cpu.compute(self.costs.checksum_us(nbytes))

    def crc(self, nbytes: int):
        return self.cpu.compute(self.costs.crc_us(nbytes))

    def fast_trap(self):
        return self.cpu.compute(self.costs.fast_trap_us)

    def syscall(self):
        return self.cpu.compute(self.costs.syscall_us)

    def signal_delivery(self):
        return self.cpu.compute(self.costs.signal_us)

    def __repr__(self) -> str:
        return f"<Workstation {self.name} @{self.mhz:g}MHz>"
