"""Workstation host models: CPU cost scaling, memory, kernel overheads.

The paper's measurements were taken on 60 MHz SPARCstation-20s and
50 MHz SPARCstation-10s under SunOS 4.1.3.  All software costs in this
repository are expressed *at the 60 MHz reference clock* and scaled by
each host's clock rate, so a cluster can mix SS-10s and SS-20s exactly
as the testbed in §4.2 did.
"""

from repro.host.cpu import CpuModel, REFERENCE_MHZ
from repro.host.machine import HostCosts, Workstation

__all__ = ["CpuModel", "HostCosts", "REFERENCE_MHZ", "Workstation"]
