"""CPU cost model: a counted resource plus clock scaling."""

from __future__ import annotations

from repro import obs
from repro.sim import Resource, Simulator

#: All cost constants in the repo are calibrated at this clock.
REFERENCE_MHZ = 60.0


class CpuModel:
    """A single host processor.

    Software costs are stated in microseconds at the 60 MHz reference
    SuperSPARC; :meth:`scale` converts them to this CPU's clock.  The
    processor is a capacity-1 resource, so concurrent activities on one
    host (application, kernel protocol processing, signal handlers)
    serialize, as they did on the paper's uniprocessor workstations.
    """

    def __init__(self, sim: Simulator, mhz: float = REFERENCE_MHZ, name: str = "cpu"):
        if mhz <= 0:
            raise ValueError("clock rate must be positive")
        self.sim = sim
        self.mhz = mhz
        self.name = name
        self.resource = Resource(sim, capacity=1, name=name)
        self.busy_us = 0.0

    def scale(self, us_at_reference: float) -> float:
        """Convert a reference-clock cost into this CPU's cost."""
        return us_at_reference * (REFERENCE_MHZ / self.mhz)

    def compute(self, us_at_reference: float, priority: int = 0):
        """Generator: occupy the CPU for a (clock-scaled) duration.

        ``priority`` below zero models interrupt-level work (splnet):
        it is served before queued process-level work."""
        cost = self.scale(us_at_reference)
        _o = obs.active
        if _o is not None:
            _o.charge(cost)
        request = self.resource.request(priority)
        yield request
        try:
            yield self.sim.timeout(cost)
            self.busy_us += cost
            if _o is not None:
                _o.sample(self.sim.now, f"{self.name}.busy_us", self.busy_us)
        finally:
            self.resource.release(request)

    def compute_raw(self, us: float):
        """Generator: occupy the CPU for an *unscaled* duration."""
        _o = obs.active
        if _o is not None:
            _o.charge(us)
        request = self.resource.request()
        yield request
        try:
            yield self.sim.timeout(us)
            self.busy_us += us
            if _o is not None:
                _o.sample(self.sim.now, f"{self.name}.busy_us", self.busy_us)
        finally:
            self.resource.release(request)
