"""repro: a full reproduction of the U-Net user-level network interface
(von Eicken, Basu, Buch, Vogels -- SOSP 1995) on a discrete-event
simulation substrate.

Subpackages:

* :mod:`repro.sim` -- discrete-event engine (microsecond virtual time).
* :mod:`repro.atm` -- cell-level ATM network with AAL5 and a switch.
* :mod:`repro.host` -- workstation CPU/memory/kernel cost models.
* :mod:`repro.core` -- the U-Net architecture itself (endpoints,
  communication segments, message queues, mux, kernel agent, NIs).
* :mod:`repro.am` -- U-Net Active Messages (GAM 1.1-style).
* :mod:`repro.ip` -- TCP/UDP/IP over U-Net plus the in-kernel baseline.
* :mod:`repro.splitc` -- Split-C runtime and the seven paper benchmarks.
* :mod:`repro.bench` -- table/figure harness shared by benchmarks/.
"""

__version__ = "1.0.0"
