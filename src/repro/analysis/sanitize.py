"""Runtime sanitizers for the simulator's ownership invariants.

Two sanitizers, both *zero overhead when off* (objects created while
sanitizing carry a checker; everything else carries ``None`` and pays
one attribute test that the branch predictor eats):

* :class:`SegmentSanitizer` -- tracks the live/poisoned state of every
  :class:`~repro.core.segment.CommSegment` allocation and catches
  double-free, free-of-never-allocated, overlapping free,
  use-after-free *writes*, and leak-at-teardown.
* :class:`RingSanitizer` -- descriptor/free-queue invariants on
  :class:`~repro.core.queues.DescriptorRing`: occupancy can never
  exceed capacity, a descriptor object may not be queued twice
  (recycle-before-consume), and free-queue buffers may not overlap.

Enable with ``REPRO_SANITIZE=1`` in the environment, programmatically
via :func:`enable`, or per-test with the ``sanitized_runtime`` pytest
fixture (which also asserts leak-freedom at teardown).

This module is intentionally dependency-light (stdlib + the error
types) so the core data-path modules can import it without dragging in
the static-analysis machinery.
"""

from __future__ import annotations

import os
import weakref
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.core.errors import QueueInvariantError, SegmentOwnershipError


def _env_enabled() -> bool:
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
        "", "0", "false", "off", "no",
    )


def _trip(exc):
    """Crash hook for sanitizer violations: before the typed error
    propagates, dump the obs flight recorder (when one is armed) so the
    spans leading up to the invariant break survive for post-mortem.
    Returns ``exc`` so raise sites read ``raise _trip(Error(...))``."""
    try:
        from repro import obs as _obs

        col = _obs.active
        if col is not None and col.flight is not None:
            col.flight.dump_on_trip(repr(exc))
    except Exception:  # simlint: disable=silent-except -- a failed dump must never mask the violation
        pass
    return exc


_STATE = {"enabled": _env_enabled()}

#: Weak references to every SegmentSanitizer created while enabled, in
#: creation order, so a fixture can assert leak-freedom at teardown.
_SEGMENT_REGISTRY: List["weakref.ref[SegmentSanitizer]"] = []


def enabled() -> bool:
    """Are sanitizers armed for objects created from now on?"""
    return _STATE["enabled"]


def enable(on: bool = True) -> bool:
    """Arm/disarm sanitizers; returns the previous setting."""
    previous = _STATE["enabled"]
    _STATE["enabled"] = on
    return previous


def check_leaks(since: int = 0) -> None:
    """Raise :class:`SegmentOwnershipError` if any sanitized segment
    (registered at index >= ``since``) still holds live allocations."""
    for ref in _SEGMENT_REGISTRY[since:]:
        sanitizer = ref()
        if sanitizer is not None:
            sanitizer.check_teardown()


def registry_size() -> int:
    return len(_SEGMENT_REGISTRY)


@contextmanager
def sanitized():
    """Context manager: arm sanitizers, and at exit verify that every
    segment created inside the block was torn down leak-free."""
    mark = len(_SEGMENT_REGISTRY)
    previous = enable(True)
    try:
        yield
        check_leaks(since=mark)
    finally:
        enable(previous)


class SegmentSanitizer:
    """Ownership tracker for one communication segment.

    The segment itself always validates frees against its live
    allocation table (the hardened ``free()``); the sanitizer layers
    the *history-dependent* checks on top: poisoned (freed) regions for
    use-after-free writes and precise double-free classification, plus
    leak accounting.
    """

    __slots__ = ("name", "poisoned", "live", "allocs", "frees",
                 "writes_checked", "__weakref__")

    def __init__(self, name: str = ""):
        self.name = name
        #: offset -> length for regions freed and not since reallocated.
        self.poisoned: Dict[int, int] = {}
        #: mirror of the segment's live table, for leak reports.
        self.live: Dict[int, int] = {}
        self.allocs = 0
        self.frees = 0
        self.writes_checked = 0
        _SEGMENT_REGISTRY.append(weakref.ref(self))

    # -- hooks called by CommSegment ------------------------------------
    def on_alloc(self, offset: int, length: int) -> None:
        self.allocs += 1
        self.live[offset] = length
        end = offset + length
        for off in list(self.poisoned):
            if off < end and offset < off + self.poisoned[off]:
                del self.poisoned[off]  # region recycled: no longer stale

    def on_free(self, offset: int, length: int) -> None:
        self.frees += 1
        del self.live[offset]
        self.poisoned[offset] = length

    def check_write(self, offset: int, length: int) -> None:
        """Writes into freed-but-not-reallocated regions are
        use-after-free: the allocator may hand that memory to the next
        alloc (or the NI may scatter a message there) at any moment."""
        self.writes_checked += 1
        if not self.poisoned:
            return
        end = offset + length
        for off, ln in self.poisoned.items():
            if off < end and offset < off + ln:
                raise _trip(SegmentOwnershipError(
                    f"use-after-free: write [{offset}, {end}) touches freed "
                    f"buffer [{off}, {off + ln}) of segment {self.name!r}"
                ))

    def was_freed(self, offset: int) -> bool:
        return offset in self.poisoned

    def check_teardown(self) -> None:
        """Leak check: every allocation must have been freed."""
        if self.live:
            leaked = sorted(self.live.items())
            total = sum(length for _, length in leaked)
            head = ", ".join(f"[{o}, {o + l})" for o, l in leaked[:5])
            more = "..." if len(leaked) > 5 else ""
            raise _trip(SegmentOwnershipError(
                f"leak-at-teardown: segment {self.name!r} still holds "
                f"{len(leaked)} live allocation(s) totalling {total} bytes: "
                f"{head}{more}"
            ))


#: Types whose instances may be interned/shared: pushing one twice is
#: not evidence of descriptor recycling.
_IDENTITYLESS = (str, bytes, int, float, bool, frozenset, type(None), tuple)


class RingSanitizer:
    """Descriptor-ring invariants for one :class:`DescriptorRing`."""

    __slots__ = ("name", "queued_ids", "free_ranges")

    def __init__(self, name: str = ""):
        self.name = name
        #: id() of every descriptor object currently in the ring.
        self.queued_ids: Dict[int, bool] = {}
        #: id(descriptor) -> (offset, length) for queued free buffers.
        self.free_ranges: Dict[int, Tuple[int, int]] = {}

    def on_push(self, item, occupancy: int, capacity: int) -> None:
        if occupancy >= capacity:
            raise _trip(QueueInvariantError(
                f"ring {self.name!r} overflow: push at occupancy "
                f"{occupancy}/{capacity} (back-pressure bypassed)"
            ))
        if isinstance(item, _IDENTITYLESS):
            # Interned immutables (test payloads, sentinels) share id();
            # recycle tracking only means something for descriptor objects.
            return
        key = id(item)
        if key in self.queued_ids:
            raise _trip(QueueInvariantError(
                f"ring {self.name!r}: descriptor {item!r} pushed while "
                f"still queued (recycled before the consumer popped it)"
            ))
        bounds = self._buffer_bounds(item)
        if bounds is not None:
            offset, length = bounds
            end = offset + length
            for other_off, other_len in self.free_ranges.values():
                if other_off < end and offset < other_off + other_len:
                    raise _trip(QueueInvariantError(
                        f"ring {self.name!r}: free buffer [{offset}, {end}) "
                        f"overlaps queued buffer [{other_off}, "
                        f"{other_off + other_len}); the NI would scatter two "
                        f"messages into the same memory"
                    ))
            self.free_ranges[key] = bounds
        self.queued_ids[key] = True

    def on_pop(self, item) -> None:
        self.queued_ids.pop(id(item), None)
        self.free_ranges.pop(id(item), None)

    def on_drain(self, items) -> None:
        for item in items:
            self.on_pop(item)

    @staticmethod
    def _buffer_bounds(item) -> Optional[Tuple[int, int]]:
        # FreeDescriptor-shaped objects carry a single (offset, length)
        # buffer grant; duck-typed so queues.py need not import it.
        if type(item).__name__ == "FreeDescriptor":
            return (item.offset, item.length)
        return None
