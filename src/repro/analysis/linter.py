"""simlint core: file parsing, disable-comment handling, rule driving.

The linter is AST-based and repo-specific: every rule encodes one
invariant the simulator's results depend on (simulated time only,
seeded randomness, deterministic ordering, engine yield discipline).
Rules live in :mod:`repro.analysis.rules`; this module supplies the
shared machinery:

* :class:`FileContext` -- one parsed file plus the import table and the
  ``# simlint: disable=...`` map, handed to every rule.
* :func:`lint_file` / :func:`lint_paths` -- run a rule set and return
  :class:`Violation` records with precise ``file:line:col`` positions.

Escape hatches::

    x = frob()  # simlint: disable=wall-clock        (this line, this rule)
    y = nrob()  # simlint: disable                   (this line, all rules)
    # simlint: disable-file=unordered-iter           (whole file, this rule)
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

_DISABLE_RE = re.compile(
    r"#\s*simlint:\s*(disable-file|disable)"
    r"\s*(?:=\s*([\w-]+(?:\s*,\s*[\w-]+)*))?"
)


@dataclass(frozen=True)
class Violation:
    """One rule breach at a precise source position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class LintError(Exception):
    """A file could not be linted (unreadable, unparseable)."""


class FileContext:
    """Everything a rule needs to inspect one source file."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        try:
            self.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise LintError(f"{path}: syntax error: {exc}") from exc
        self.lines = source.splitlines()
        #: line number -> set of rule names disabled there ("*" = all).
        self.disabled_lines: Dict[int, Set[str]] = {}
        #: rule names disabled for the entire file ("*" = all).
        self.disabled_file: Set[str] = set()
        self._scan_disable_comments()
        #: local name -> fully qualified name ("np" -> "numpy",
        #: "time" -> "time.time" for ``from time import time``).
        self.imports: Dict[str, str] = {}
        self._build_import_table()

    # -- module identity -------------------------------------------------
    @property
    def module_name(self) -> str:
        """Dotted module path, rooted at the ``repro`` package when the
        file lives inside it (else "")."""
        parts = self.path.replace("\\", "/").split("/")
        if "repro" not in parts:
            return ""
        parts = parts[parts.index("repro"):]
        if parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    # -- disable comments --------------------------------------------------
    def _scan_disable_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _DISABLE_RE.search(tok.string)
                if not match:
                    continue
                kind, names = match.group(1), match.group(2)
                rules = (
                    {name.strip() for name in names.split(",") if name.strip()}
                    if names
                    else {"*"}
                )
                if kind == "disable-file":
                    self.disabled_file |= rules
                else:
                    self.disabled_lines.setdefault(tok.start[0], set()).update(rules)
        except tokenize.TokenError:
            pass  # unterminated string etc.; ast.parse already vetted it

    def is_disabled(self, rule: str, line: int) -> bool:
        if "*" in self.disabled_file or rule in self.disabled_file:
            return True
        on_line = self.disabled_lines.get(line, ())
        return "*" in on_line or rule in on_line

    # -- import resolution -------------------------------------------------
    def _build_import_table(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain through the import table.

        ``np.random.default_rng`` -> "numpy.random.default_rng" when the
        file holds ``import numpy as np``; unresolvable chains (calls,
        subscripts at the base) return None.
        """
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id, node.id)
        chain.append(base)
        return ".".join(reversed(chain))

    def violation(self, node: ast.AST, rule: str, message: str) -> Violation:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Violation(self.path, line, col + 1, rule, message)


def lint_file(path: str, rules: Sequence, source: Optional[str] = None) -> List[Violation]:
    """Run ``rules`` over one file; honours the disable comments."""
    if source is None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise LintError(f"{path}: {exc}") from exc
    ctx = FileContext(path, source)
    found: List[Violation] = []
    for rule in rules:
        for violation in rule.check(ctx):
            if not ctx.is_disabled(violation.rule, violation.line):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return found


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    import os

    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise LintError(f"{path}: no such file or directory")
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_paths(paths: Iterable[str], rules: Sequence) -> List[Violation]:
    """Lint every python file under ``paths`` with ``rules``."""
    found: List[Violation] = []
    for path in iter_python_files(paths):
        found.extend(lint_file(path, rules))
    return found
