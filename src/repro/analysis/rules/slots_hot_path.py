"""slots-hot-path: registered hot-path classes must carry ``__slots__``.

The engine's event classes and the ATM cell are allocated millions of
times per run; PR 1 made them all slotted.  A forgotten ``__slots__`` on
a *subclass* silently reintroduces a per-instance ``__dict__`` (Python
adds one whenever any class in the MRO lacks slots), quietly undoing
the optimisation.  This rule keeps the registry honest:

* every class listed in :data:`HOT_PATH_CLASSES` must define
  ``__slots__`` (or be a ``@dataclass(slots=True)``);
* any class that *subclasses* a registered hot-path class -- resolved
  through the file's imports -- must define ``__slots__`` itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: module -> classes that must stay slotted (the registered hot paths).
HOT_PATH_CLASSES = {
    "repro.sim.engine": {
        "Event", "Timeout", "Process", "AnyOf", "AllOf", "Simulator",
    },
    "repro.atm.cell": {"Cell"},
}

#: Fully qualified spellings under which the hot-path bases can be
#: imported (both the defining module and the re-exporting package).
HOT_PATH_BASE_QUALNAMES = frozenset(
    {
        "repro.sim.engine.Event",
        "repro.sim.engine.Timeout",
        "repro.sim.engine.Process",
        "repro.sim.engine.AnyOf",
        "repro.sim.engine.AllOf",
        "repro.sim.Event",
        "repro.sim.Timeout",
        "repro.sim.Process",
        "repro.sim.AnyOf",
        "repro.sim.AllOf",
        "repro.atm.cell.Cell",
        "repro.atm.Cell",
    }
)


def _defines_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _is_slotted_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        if name != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _is_slotted(node: ast.ClassDef) -> bool:
    return _defines_slots(node) or _is_slotted_dataclass(node)


@register
class SlotsHotPathRule(Rule):
    name = "slots-hot-path"
    description = (
        "registered hot-path classes (engine events, Cell) and their "
        "subclasses must define __slots__"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        required = HOT_PATH_CLASSES.get(ctx.module_name, set())
        local_hot = set(required)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name in required and not _is_slotted(node):
                yield self.violation(
                    ctx,
                    node,
                    f"{node.name} is a registered hot-path class and must "
                    f"define __slots__ (or use @dataclass(slots=True))",
                )
                continue
            for base in node.bases:
                base_name = base.id if isinstance(base, ast.Name) else None
                qual = ctx.qualified_name(base)
                is_hot_base = (
                    (base_name is not None and base_name in local_hot)
                    or (qual is not None and qual in HOT_PATH_BASE_QUALNAMES)
                )
                if is_hot_base:
                    # Subclasses of slotted hot-path classes stay hot.
                    local_hot.add(node.name)
                    if not _is_slotted(node):
                        yield self.violation(
                            ctx,
                            node,
                            f"{node.name} subclasses the slotted hot-path "
                            f"class {base_name or qual} without __slots__; "
                            f"Python silently adds a per-instance __dict__, "
                            f"undoing the optimisation",
                        )
                    break
