"""mutable-default: mutable default arguments are shared state.

``def f(x, buf=[])`` evaluates the default once at definition time, so
every call without the argument shares one list.  In the simulator this
is a determinism hazard of the same family as module-level mutables:
state leaks between sessions, benchmarks, and perturbation re-runs of
the same scenario, making the second run depend on the first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: call targets whose result is a fresh mutable container
_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter",
}


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute)
            else None
        )
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaultRule(Rule):
    name = "mutable-default"
    description = (
        "default argument values must not be mutable (evaluated once, "
        "shared across every call)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable(default):
                    label = (
                        "<lambda>" if isinstance(node, ast.Lambda)
                        else node.name
                    )
                    yield self.violation(
                        ctx,
                        default,
                        f"mutable default {ast.unparse(default)!r} in "
                        f"{label}() is evaluated once and shared by every "
                        f"call; default to None and create it in the body",
                    )
