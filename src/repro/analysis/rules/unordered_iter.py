"""unordered-iter: no set-ordered iteration feeding the scheduler.

Set iteration order depends on PYTHONHASHSEED (strings hash
differently every run), so a ``for endpoint in some_set:`` that
schedules work turns the whole simulation non-reproducible.  The rule
flags iteration over expressions that are provably sets -- set
literals, comprehensions, ``set()``/``frozenset()`` calls, set-algebra
methods, and local names only ever assigned such values -- unless the
result is consumed by an order-insensitive reduction (``sorted``,
``sum``, ``min``...).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register
from repro.analysis.rules.yield_event import _walk_own

#: set-returning methods (set algebra).
SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Wrapping calls that make iteration order irrelevant.
ORDER_INSENSITIVE = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset",
     "Counter"}
)


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in SET_METHODS
            and _is_set_expr(func.value, set_names)
        ):
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra operators -- only when a side is a known set.
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _set_bound_names(scope: ast.AST) -> Set[str]:
    """Names in ``scope`` that are only ever assigned set expressions."""
    assigned_set: Set[str] = set()
    assigned_other: Set[str] = set()
    for node in _walk_own(scope):
        targets: List[ast.AST] = []
        value = None
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and node.value:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if value is not None and _is_set_expr(value, assigned_set):
                assigned_set.add(target.id)
            else:
                assigned_other.add(target.id)
    return assigned_set - assigned_other


_COMP_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


@register
class UnorderedIterRule(Rule):
    name = "unordered-iter"
    description = (
        "iteration over sets is PYTHONHASHSEED-dependent; sort first or "
        "keep an ordered list/dict"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # Comprehensions whose entire result feeds an order-insensitive
        # reduction (sorted(x for x in s), "".join(...), sum(...)).
        exempt: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if name in ORDER_INSENSITIVE or name == "join":
                for arg in node.args:
                    if isinstance(arg, _COMP_NODES):
                        exempt.add(id(arg))

        scopes = [ctx.tree] + [
            n for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            set_names = _set_bound_names(scope)
            for node in _walk_own(scope):
                if node is not scope and isinstance(node, (ast.For, ast.AsyncFor)):
                    if _is_set_expr(node.iter, set_names):
                        yield self._flag(ctx, node.iter)
                elif isinstance(node, _COMP_NODES) and id(node) not in exempt:
                    for comp in node.generators:
                        if _is_set_expr(comp.iter, set_names):
                            yield self._flag(ctx, comp.iter)

    def _flag(self, ctx: FileContext, node: ast.AST) -> Violation:
        return self.violation(
            ctx,
            node,
            "iteration order over a set depends on PYTHONHASHSEED; wrap in "
            "sorted(...) or keep an ordered collection if this feeds the "
            "scheduler",
        )
