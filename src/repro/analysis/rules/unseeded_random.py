"""unseeded-random: all randomness must come from explicitly seeded RNGs.

The module-level ``random.*`` / ``numpy.random.*`` functions draw from
hidden global state, so two runs of "the same" simulation diverge.
Model and workload code must thread a seeded instance
(``np.random.default_rng(seed)`` / ``random.Random(seed)``) instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: stdlib ``random`` module-level functions that use the global RNG.
RANDOM_GLOBAL = frozenset(
    {
        "random", "randint", "randrange", "randbytes", "getrandbits",
        "choice", "choices", "shuffle", "sample", "uniform", "triangular",
        "gauss", "normalvariate", "lognormvariate", "expovariate",
        "betavariate", "gammavariate", "paretovariate", "vonmisesvariate",
        "weibullvariate", "seed",
    }
)

#: legacy ``numpy.random`` module-level functions (global RandomState).
NUMPY_GLOBAL = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "bytes", "seed",
        "uniform", "normal", "standard_normal", "exponential", "poisson",
        "binomial", "beta", "gamma", "integers",
    }
)

#: RNG constructors that must receive an explicit seed argument.
SEED_REQUIRED = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    }
)


@register
class UnseededRandomRule(Rule):
    name = "unseeded-random"
    description = (
        "no global-state or unseeded RNGs; use np.random.default_rng(seed) "
        "or random.Random(seed)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.qualified_name(node.func)
            if qual is None:
                continue
            if qual in SEED_REQUIRED:
                if not node.args and not node.keywords:
                    yield self.violation(
                        ctx,
                        node,
                        f"{qual}() without a seed is entropy-seeded; pass an "
                        f"explicit seed for reproducible runs",
                    )
                continue
            module, _, attr = qual.rpartition(".")
            if module == "random" and attr in RANDOM_GLOBAL:
                yield self.violation(
                    ctx,
                    node,
                    f"random.{attr}() uses the hidden global RNG; draw from "
                    f"a seeded random.Random(seed) instance",
                )
            elif module == "numpy.random" and attr in NUMPY_GLOBAL:
                yield self.violation(
                    ctx,
                    node,
                    f"numpy.random.{attr}() uses the legacy global RandomState; "
                    f"draw from a seeded np.random.default_rng(seed)",
                )
