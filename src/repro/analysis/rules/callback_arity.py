"""callback-arity: schedule_callback argument lists must fit the callee.

``sim.schedule_callback(delay, fn, *args)`` applies ``fn(*args)`` when
the heap entry fires -- hours of simulated time after the call site, so
an arity mismatch surfaces as a TypeError with a useless stack.  When
the callee is resolvable statically (a ``self._method`` of the
enclosing class or a function defined in the same module), this rule
checks the argument count against the callee's signature at lint time.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: scheduling entry points -> number of leading non-callback parameters
#: (the delay / absolute time) before the callable.
SCHEDULERS = {"schedule_callback": 1, "schedule_callback_at": 1}


@dataclass(frozen=True)
class _Arity:
    """Positional-argument window a callable accepts."""

    min_args: int
    max_args: Optional[int]  # None = *args

    def accepts(self, n: int) -> bool:
        if n < self.min_args:
            return False
        return self.max_args is None or n <= self.max_args


def _arity_of(func: ast.AST, drop_self: bool) -> _Arity:
    args = func.args
    positional = list(args.posonlyargs) + list(args.args)
    if drop_self and positional:
        positional = positional[1:]
    total = len(positional)
    required = total - len(args.defaults)
    return _Arity(
        min_args=max(0, required),
        max_args=None if args.vararg is not None else total,
    )


class _Tables(ast.NodeVisitor):
    """Module functions and per-class method signatures."""

    def __init__(self) -> None:
        self.functions: Dict[str, _Arity] = {}
        self.methods: Dict[str, Dict[str, _Arity]] = {}
        self._class: Optional[str] = None

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        previous, self._class = self._class, node.name
        self.methods.setdefault(node.name, {})
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                is_static = any(
                    isinstance(d, ast.Name) and d.id == "staticmethod"
                    for d in child.decorator_list
                )
                if not child.decorator_list or is_static:
                    self.methods[node.name][child.name] = _arity_of(
                        child, drop_self=not is_static
                    )
        self.generic_visit(node)
        self._class = previous

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._class is None and not node.decorator_list:
            self.functions[node.name] = _arity_of(node, drop_self=False)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


class _CallVisitor(ast.NodeVisitor):
    def __init__(self, rule: "CallbackArityRule", ctx: FileContext, tables: _Tables):
        self.rule = rule
        self.ctx = ctx
        self.tables = tables
        self._class: Optional[str] = None
        self.found = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        previous, self._class = self._class, node.name
        self.generic_visit(node)
        self._class = previous

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in SCHEDULERS):
            return
        skip = SCHEDULERS[func.attr]
        if len(node.args) < skip + 1 or node.keywords:
            return
        callback = node.args[skip]
        passed = node.args[skip + 1:]
        if any(isinstance(a, ast.Starred) for a in passed):
            return
        arity = self._resolve(callback)
        if arity is None:
            return
        n = len(passed)
        if not arity.accepts(n):
            upper = "*" if arity.max_args is None else str(arity.max_args)
            target = ast.unparse(callback)
            self.found.append(
                self.rule.violation(
                    self.ctx,
                    node,
                    f"{func.attr} passes {n} argument(s) to {target}, which "
                    f"takes {arity.min_args}..{upper}; the TypeError would "
                    f"only fire when the heap entry runs",
                )
            )

    def _resolve(self, callback: ast.AST) -> Optional[_Arity]:
        if isinstance(callback, ast.Lambda):
            return _arity_of(callback, drop_self=False)
        if isinstance(callback, ast.Name):
            return self.tables.functions.get(callback.id)
        if (
            isinstance(callback, ast.Attribute)
            and isinstance(callback.value, ast.Name)
            and callback.value.id == "self"
            and self._class is not None
        ):
            return self.tables.methods.get(self._class, {}).get(callback.attr)
        return None


@register
class CallbackArityRule(Rule):
    name = "callback-arity"
    description = (
        "schedule_callback(_at) argument counts must match the callee's "
        "signature (checked when the callee resolves statically)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        tables = _Tables()
        tables.visit(ctx.tree)
        visitor = _CallVisitor(self, ctx, tables)
        visitor.visit(ctx.tree)
        yield from visitor.found
