"""direct-tracer-append: no ad-hoc event emission in data-path code.

Structured observability has exactly two front doors: ``Tracer.log()``
(which maintains counters, honours the bounded ring, and applies the
record cap) and the ``repro.obs`` span/counter API.  Appending to
``tracer.records`` directly bypasses both the counter bookkeeping and
the ``max_records`` ring bound; ``print()`` in a hot path is invisible
to every analysis pass and ruins benchmark wall-clock.  The one
legitimate append -- inside ``Tracer.log`` itself -- carries a disable
comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: Module prefixes considered data-path: simulated-time code where any
#: output must flow through Tracer/obs.  Bench harnesses, analysis
#: tooling, and the obs package itself legitimately print reports.
HOT_PREFIXES = (
    "repro.sim",
    "repro.core",
    "repro.atm",
    "repro.am",
    "repro.host",
    "repro.ip",
    "repro.splitc",
)


def _is_hot_path(module_name: str) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in HOT_PREFIXES
    )


@register
class DirectTracerAppendRule(Rule):
    name = "direct-tracer-append"
    description = (
        "no tracer.records.append() (bypasses counters and the ring "
        "bound) and no print() in data-path modules; use Tracer.log or "
        "repro.obs"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        hot = _is_hot_path(ctx.module_name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "append"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "records"
            ):
                yield self.violation(
                    ctx,
                    node,
                    "direct append to a tracer's records bypasses counter "
                    "bookkeeping and the max_records ring; call "
                    "Tracer.log() instead",
                )
            elif (
                hot
                and isinstance(func, ast.Name)
                and func.id == "print"
            ):
                yield self.violation(
                    ctx,
                    node,
                    "print() in data-path code is invisible to the "
                    "analysis layer; emit through Tracer.log() or a "
                    "repro.obs counter",
                )
