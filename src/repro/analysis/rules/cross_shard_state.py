"""cross-shard-state: reaching through a cut-edge proxy for state.

When a topology is partitioned across shards, an object on the far
side of a cut edge is represented locally by a
:class:`~repro.sim.shard.channel.RemoteStub` — a handle that carries
identity (which shard, which label) but deliberately *no state*: the
real object lives on another timeline whose clock is somewhere else in
this shard's past or future, so any attribute read through the stub
would be a schedule-order accident at best.  The stub raises
:class:`~repro.sim.shard.errors.CrossShardAccessError` at runtime;
this rule is the static counterpart, flagging the access patterns
before a sharded run ever executes them:

* ``link.remote_peer.anything`` — one level beyond the stub handle;
* ``switch.remote_peers[p].anything`` — same, through the trunk map;
* ``peer = x.remote_peer`` / ``peer = ch.stub`` followed by
  ``peer.anything`` — aliased access in the same function scope.

Reading the handle itself (``if link.remote_peer is None``), storing
it (``self.remote_peers[p] = channel.stub``), or passing it around is
fine — only going *through* it is flagged.  Cross-shard interaction
belongs on the channel: send cells, not attribute reads.

The detection lives in :mod:`repro.analysis.flow.escape` (shared with
the whole-program ``flow-cross-shard`` pass, which additionally
follows helper returns and stored ``self`` attributes across methods);
this rule is the per-file view with the historical name and message.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.flow.escape import scan_module
from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register


@register
class CrossShardStateRule(Rule):
    name = "cross-shard-state"
    description = (
        "attribute access through a cut-edge proxy (remote_peer / "
        "remote_peers[...] / channel.stub) reads state owned by another "
        "shard; use the channel, not the stub"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node, through in scan_module(ctx.tree):
            yield self.violation(
                ctx,
                node,
                f"{ast.unparse(node)} reaches through the cut-edge "
                f"proxy {through}: the object it stands for is owned "
                f"by another shard's timeline, so this read is a "
                f"schedule-order accident (CrossShardAccessError at "
                f"runtime) — interact through the shard channel "
                f"instead",
            )
