"""cross-shard-state: reaching through a cut-edge proxy for state.

When a topology is partitioned across shards, an object on the far
side of a cut edge is represented locally by a
:class:`~repro.sim.shard.channel.RemoteStub` — a handle that carries
identity (which shard, which label) but deliberately *no state*: the
real object lives on another timeline whose clock is somewhere else in
this shard's past or future, so any attribute read through the stub
would be a schedule-order accident at best.  The stub raises
:class:`~repro.sim.shard.errors.CrossShardAccessError` at runtime;
this rule is the static counterpart, flagging the access patterns
before a sharded run ever executes them:

* ``link.remote_peer.anything`` — one level beyond the stub handle;
* ``switch.remote_peers[p].anything`` — same, through the trunk map;
* ``peer = x.remote_peer`` / ``peer = ch.stub`` followed by
  ``peer.anything`` — aliased access in the same function scope.

Reading the handle itself (``if link.remote_peer is None``), storing
it (``self.remote_peers[p] = channel.stub``), or passing it around is
fine — only going *through* it is flagged.  Cross-shard interaction
belongs on the channel: send cells, not attribute reads.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: attributes that hold a cut-edge proxy (``remote_peers`` via subscript)
_STUB_ATTRS = {"remote_peer", "stub"}
_STUB_MAPS = {"remote_peers"}


def _is_stub_expr(node: ast.AST) -> bool:
    """True when ``node`` evaluates to a cut-edge proxy handle."""
    if isinstance(node, ast.Attribute) and node.attr in _STUB_ATTRS:
        return True
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr in _STUB_MAPS
    ):
        return True
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "CrossShardStateRule", ctx: FileContext):
        self.rule = rule
        self.ctx = ctx
        self.found: List[Violation] = []
        #: per-function-scope names aliased to a stub expression
        self._aliases: List[Set[str]] = [set()]

    def visit_FunctionDef(self, node) -> None:
        self._aliases.append(set())
        self.generic_visit(node)
        self._aliases.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if _is_stub_expr(node.value):
                    self._aliases[-1].add(target.id)
                else:
                    self._aliases[-1].discard(target.id)

    def _aliased(self, name: str) -> bool:
        return any(name in scope for scope in self._aliases)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)
        value = node.value
        through = None
        if _is_stub_expr(value):
            through = ast.unparse(value)
        elif isinstance(value, ast.Name) and self._aliased(value.id):
            through = value.id
        if through is not None:
            self.found.append(
                self.rule.violation(
                    self.ctx,
                    node,
                    f"{ast.unparse(node)} reaches through the cut-edge "
                    f"proxy {through}: the object it stands for is owned "
                    f"by another shard's timeline, so this read is a "
                    f"schedule-order accident (CrossShardAccessError at "
                    f"runtime) — interact through the shard channel "
                    f"instead",
                )
            )


@register
class CrossShardStateRule(Rule):
    name = "cross-shard-state"
    description = (
        "attribute access through a cut-edge proxy (remote_peer / "
        "remote_peers[...] / channel.stub) reads state owned by another "
        "shard; use the channel, not the stub"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found
