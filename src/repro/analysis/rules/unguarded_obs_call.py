"""unguarded-obs-call: observability calls must pay zero when off.

The span and metrics substrates are zero-overhead-when-off only under
the module-attr guard discipline::

    _o = obs.active            # one attribute read
    if _o is not None:
        _o.bump(...)           # hot-path work only when armed

    _m = _metrics.active
    if _m is not None:
        _m.observe(key, value)

Calling through the module attribute directly --
``obs.active.bump(...)`` or ``metrics.active.observe(...)`` -- breaks
that contract twice over: it raises ``AttributeError`` the moment
observability is off (``active`` is ``None``), and even when armed it
re-reads the module global on every call instead of once per function.
This rule flags any call whose receiver chain resolves to
``repro.obs.active`` or ``repro.obs.metrics.active`` inside the
data-path modules; report/analysis layers, which only run with
observability armed, are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register
from repro.analysis.rules.direct_tracer_append import _is_hot_path

#: Receiver chains that mean "the live collector/registry, read inline".
_GUARDED_ATTRS = (
    "repro.obs.active",
    "repro.obs.metrics.active",
)


@register
class UnguardedObsCallRule(Rule):
    name = "unguarded-obs-call"
    description = (
        "no obs.active.X() / metrics.active.X() in data-path modules; "
        "bind the module attr once and branch on None"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not _is_hot_path(ctx.module_name):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            # The receiver is everything left of the final method name:
            # obs.active.bump(...) -> receiver chain "repro.obs.active".
            receiver = ctx.qualified_name(func.value)
            if receiver in _GUARDED_ATTRS:
                yield self.violation(
                    ctx,
                    node,
                    f"call through {receiver} bypasses the off-guard "
                    f"(crashes when observability is off, re-reads the "
                    f"module global when on); bind it to a local and "
                    f"test for None first",
                )
