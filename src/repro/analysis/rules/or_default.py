"""or-default: no ``x or Default()`` fallbacks for injected collaborators.

The PR 1 tracer bug class: ``self.tracer = tracer or Tracer()`` silently
replaces a *falsy but valid* injected object (a shared Tracer with no
records yet, an empty cost table) with a fresh private one, and six
modules each stopped reporting into the shared instance.  The only
correct spelling for optional injection is an explicit None test::

    self.tracer = tracer if tracer is not None else Tracer()
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register


def _constructor_name(node: ast.expr) -> str:
    """The called name when ``node`` looks like ``Ctor(...)``, else ""."""
    if not isinstance(node, ast.Call):
        return ""
    func = node.func
    name = ""
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name if name[:1].isupper() else ""


@register
class OrDefaultRule(Rule):
    name = "or-default"
    description = (
        "no `x or Default()` for injected collaborators; falsy-but-valid "
        "objects get silently replaced -- use `x if x is not None else Default()`"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or)):
                continue
            ctor = _constructor_name(node.values[-1])
            if not ctor:
                continue
            left = node.values[0]
            left_src = (
                ast.unparse(left) if isinstance(left, (ast.Name, ast.Attribute))
                else "x"
            )
            yield self.violation(
                ctx,
                node,
                f"`{left_src} or {ctor}(...)` drops a falsy-but-valid injected "
                f"object (the PR 1 shared-tracer bug); use "
                f"`{left_src} if {left_src} is not None else {ctor}(...)`",
            )
