"""yield-event: generator processes may only yield engine event values.

The engine resumes a process when the *Event* it yielded triggers; a
yielded tuple, number, or arithmetic expression can never trigger and
kills the process with "yielded a non-event" deep inside a run, far
from the offending line.  This rule rejects yield operands that are
provably not events: literals, displays, comprehensions, arithmetic,
comparisons, f-strings, and lambdas.

A bare ``yield`` placed directly after ``return`` is the established
"make this function a generator" idiom and stays legal; any other bare
``yield`` (which sends None to the engine) is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: Node types whose value can never be an Event instance.
_NEVER_EVENT = (
    ast.Constant,
    ast.Tuple, ast.List, ast.Dict, ast.Set,
    ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    ast.BinOp, ast.BoolOp, ast.Compare, ast.UnaryOp,
    ast.JoinedStr, ast.FormattedValue, ast.Lambda,
)

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


#: Decorators that change the meaning of ``yield``: the function is a
#: context manager / fixture, not an engine process.
_EXEMPT_DECORATORS = frozenset(
    {"contextmanager", "asynccontextmanager", "fixture"}
)


def _walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function definitions."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _FUNC_NODES):
                continue
            stack.append(child)


def _own_expressions(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk the expressions belonging directly to ``stmt``.

    Child *statements* (loop/try/with bodies) are pruned -- they appear
    in their own statement list with their own after-``return`` context
    -- as are nested function definitions, which are linted as separate
    scopes.
    """
    if isinstance(stmt, _FUNC_NODES):
        return
    stack: List[ast.AST] = [stmt]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.stmt,) + _FUNC_NODES):
                continue
            stack.append(child)


def _is_exempt_generator(ctx: FileContext, func: ast.AST) -> bool:
    """True for @contextmanager / @fixture functions: their ``yield``
    follows a different protocol than an engine process."""
    for decorator in getattr(func, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = ctx.qualified_name(target)
        if name is None:
            if isinstance(target, ast.Attribute):
                name = target.attr
            elif isinstance(target, ast.Name):
                name = target.id
        if name and name.rsplit(".", 1)[-1] in _EXEMPT_DECORATORS:
            return True
    return False


def _statement_lists(func: ast.AST) -> Iterator[List[ast.stmt]]:
    """Every statement list belonging to ``func`` itself."""
    for node in _walk_own(func):
        for field in ("body", "orelse", "finalbody"):
            block = getattr(node, field, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block


@register
class YieldEventRule(Rule):
    name = "yield-event"
    description = (
        "generator processes may only yield engine events; literals, "
        "tuples, and arithmetic can never trigger"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _is_exempt_generator(ctx, func):
                continue
            for block in _statement_lists(func):
                for index, stmt in enumerate(block):
                    yield from self._check_statement(ctx, block, index, stmt)

    def _check_statement(
        self, ctx: FileContext, block: List[ast.stmt], index: int, stmt: ast.stmt
    ) -> Iterator[Violation]:
        for node in _own_expressions(stmt):
            if not isinstance(node, ast.Yield):
                continue
            value = node.value
            if value is None or (
                isinstance(value, ast.Constant) and value.value is None
            ):
                after_return = index > 0 and isinstance(block[index - 1], ast.Return)
                if not after_return:
                    yield self.violation(
                        ctx,
                        node,
                        "bare `yield` sends None to the engine, which is not "
                        "an event (a bare yield directly after `return` -- the "
                        "make-this-a-generator idiom -- is exempt)",
                    )
            elif isinstance(value, _NEVER_EVENT):
                kind = type(value).__name__
                yield self.violation(
                    ctx,
                    node,
                    f"yielded a {kind}, which can never be an engine event; "
                    f"processes may only yield Event/Timeout/Process/"
                    f"AnyOf/AllOf values",
                )
