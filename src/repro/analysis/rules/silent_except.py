"""silent-except: no bare ``except`` or broad silent drops.

NI firmware models sit in the data path: a bare ``except:`` (which also
catches the engine's Interrupt and KeyboardInterrupt) or an
``except Exception: pass`` turns a real protocol bug into a silently
dropped message and a benchmark that quietly reports wrong numbers.
Narrow handlers with real fallback bodies stay legal; broad handlers
must at least count or trace what they swallow.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: Exception names considered "broad" when silently swallowed.
BROAD = frozenset({"Exception", "BaseException"})


def _is_silent_body(body) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


def _names_broad(node) -> bool:
    if node is None:
        return True
    if isinstance(node, ast.Tuple):
        return any(_names_broad(elt) for elt in node.elts)
    name = node.id if isinstance(node, ast.Name) else getattr(node, "attr", "")
    return name in BROAD


@register
class SilentExceptRule(Rule):
    name = "silent-except"
    description = (
        "no bare except, and no broad (Exception/BaseException) handler "
        "that silently drops -- count or trace what you swallow"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    ctx,
                    node,
                    "bare `except:` also catches Interrupt and "
                    "KeyboardInterrupt; name the exception types",
                )
            elif _names_broad(node.type) and _is_silent_body(node.body):
                caught = ast.unparse(node.type)
                yield self.violation(
                    ctx,
                    node,
                    f"`except {caught}` silently drops every failure in an "
                    f"NI/model code path; narrow the type or count/trace the "
                    f"swallowed error",
                )
