"""wall-clock: no wall-clock time sources in sim-time code.

Every timestamp in the repository is *simulated* microseconds
(``Simulator.now``).  A single ``time.time()`` or ``datetime.now()``
in model code silently couples results to the host machine; benchmark
harnesses that intentionally measure the simulator's own speed disable
the rule on the measuring lines.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: Fully qualified names that read the host clock.
BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class WallClockRule(Rule):
    name = "wall-clock"
    description = (
        "no wall-clock time (time.time, perf_counter, datetime.now) in "
        "sim-time code; use Simulator.now"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if isinstance(node, ast.Name) and not isinstance(node.ctx, ast.Load):
                continue
            qual = ctx.qualified_name(node)
            if qual in BANNED:
                # Attribute chains nest (a.b.c contains a.b); only report
                # the full chain, which is the one that resolves.
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock source {qual}() in sim-time code; "
                    f"use Simulator.now (simulated microseconds)",
                )
