"""unbatched-candidate: batch-registered callbacks must stay batchable.

The delivery batch kernels (:mod:`repro.sim.batch`) replay N queued
calls of a registered callback as one fused stroke and promise
bit-identical timelines.  That proof leans on the callback body being
straight-line -- branches mask, but loops, ``try``/``with`` blocks,
nested functions, and comprehension allocations make the fused replay
diverge from per-entry dispatch in ways no kernel precondition checks.
simcost's vectorization pass picked the original candidates for exactly
this shape; this rule keeps the registered set from silently rotting
when a body is later edited.

A justified exception carries a ``# simcost: disable`` comment inside
the function (matching the cost analyzer's escape hatch), which is the
author's assertion that the paired kernel still replays the new shape
faithfully -- or the registration should be dropped instead.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Tuple

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: registration entry points exported by repro.sim.batch.
_REGISTER_FNS = frozenset(
    {
        "repro.sim.batch.register",
        "repro.sim.batch.register_rx_extend",
    }
)

_SIMCOST_DISABLE_RE = re.compile(r"#\s*simcost:\s*disable")

#: node class -> human label for the violation message.
_NON_STRAIGHT_LINE = {
    ast.For: "for loop",
    ast.AsyncFor: "async for loop",
    ast.While: "while loop",
    ast.Try: "try block",
    ast.With: "with block",
    ast.AsyncWith: "async with block",
    ast.FunctionDef: "nested def",
    ast.AsyncFunctionDef: "nested def",
    ast.Lambda: "lambda",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
}


def _registered_methods(ctx: FileContext) -> Dict[Tuple[str, str], ast.Call]:
    """(class name, method name) -> registration call, for every
    ``batch.register*(Cls.method, ...)`` in the file."""
    found: Dict[Tuple[str, str], ast.Call] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        if ctx.qualified_name(node.func) not in _REGISTER_FNS:
            continue
        target = node.args[0]
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
        ):
            found[(target.value.id, target.attr)] = node
    return found


def _method_defs(ctx: FileContext) -> Dict[Tuple[str, str], ast.FunctionDef]:
    defs: Dict[Tuple[str, str], ast.FunctionDef] = {}
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[(node.name, stmt.name)] = stmt
    return defs


def _has_simcost_disable(ctx: FileContext, fn: ast.FunctionDef) -> bool:
    end = getattr(fn, "end_lineno", fn.lineno)
    for line in ctx.lines[fn.lineno - 1 : end]:
        if _SIMCOST_DISABLE_RE.search(line):
            return True
    return False


@register
class UnbatchedCandidateRule(Rule):
    name = "unbatched-candidate"
    description = (
        "a callback registered with repro.sim.batch grew a "
        "non-straight-line body (loop/try/with/nested def/comprehension) "
        "without a '# simcost: disable' justification"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        registered = _registered_methods(ctx)
        if not registered:
            return
        defs = _method_defs(ctx)
        for cls, method in sorted(registered):
            fn = defs.get((cls, method))
            if fn is None:
                continue  # defined elsewhere; out of this file's scope
            if _has_simcost_disable(ctx, fn):
                continue
            for node in ast.walk(fn):
                label = _NON_STRAIGHT_LINE.get(type(node))
                if label is None or node is fn:
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"{cls}.{method} is batch-registered but its body "
                    f"holds a {label}; the fused kernel replay assumes a "
                    f"straight-line callback (see repro.sim.batch) -- "
                    f"justify with '# simcost: disable' or drop the "
                    f"registration",
                )
                break  # one finding per callback is enough
