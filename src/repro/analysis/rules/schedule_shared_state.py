"""schedule-shared-state: zero-delay callbacks mutating shared state.

The engine resolves same-timestamp heap entries by insertion sequence,
so a callback scheduled with ``delay=0`` (or at ``sim.now``) runs *at
the same instant* as every other entry already pending for that time —
in an order that is an accident of who called ``schedule_callback``
first.  If such a callback mutates state that other code can also see
at that instant (a module-level table, a closure variable shared with
the scheduling function), the final value depends on the tie-break: a
schedule-order race.

This is the static side of the dynamic detector in
:mod:`repro.analysis.race`: the rule resolves the callback target
inter-procedurally (module functions, ``self`` methods, lexically
enclosing nested functions, lambdas) and inspects the *callee's* body
for mutations of module-level or closure-shared names.  Sites it flags
are exactly the candidates worth running under
``python -m repro.analysis --race-check``.

Time separation (any non-zero delay) clears the hazard: the engine
orders distinct timestamps totally.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: scheduling entry points (first positional arg is the delay / instant)
_SCHEDULERS = ("schedule_callback", "schedule_callback_at")

#: method names that mutate their receiver in place
_MUTATORS = {
    "append", "appendleft", "add", "extend", "update", "insert",
    "remove", "discard", "clear", "pop", "popleft", "popitem",
    "setdefault", "sort", "reverse", "push",
}


def _is_zero_delay(call: ast.Call) -> bool:
    """True when the schedule provably lands on the current instant."""
    if not call.args:
        return False
    when = call.args[0]
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "schedule_callback":
        return isinstance(when, ast.Constant) and when.value in (0, 0.0)
    # schedule_callback_at(<expr>.now, ...) / (<expr>._now, ...)
    return isinstance(when, ast.Attribute) and when.attr in ("now", "_now")


def _assigned_names(node: ast.AST) -> Set[str]:
    """Names bound by plain assignments directly in ``node``'s scope
    (nested functions and classes bind their own names and are not
    descended into)."""
    names: Set[str] = set()
    body = node.body if hasattr(node, "body") else []
    stack: List[ast.AST] = list(body)
    while stack:
        stmt = stack.pop()
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
        for child in ast.iter_child_nodes(stmt):
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                stack.append(child)
    return names


def _base_name(node: ast.AST) -> Optional[str]:
    """Leftmost Name of an attribute/subscript chain, or None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _mutations(callee: ast.AST, shared: Set[str]) -> List[Tuple[ast.AST, str]]:
    """(node, name) pairs where the callee body mutates a shared name."""
    found: List[Tuple[ast.AST, str]] = []
    declared: Set[str] = set()
    body = callee.body if isinstance(callee.body, list) else [callee.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                declared.update(node.names)
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared \
                            and target.id in shared:
                        found.append((node, target.id))
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        base = _base_name(target)
                        if base is not None and base != "self" and base in shared:
                            found.append((node, base))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                    base = _base_name(func.value)
                    if base is not None and base != "self" and base in shared:
                        found.append((node, base))
    return found


class _Scope:
    """One lexical function scope on the visitor stack."""

    def __init__(self, node):
        self.node = node
        self.locals = _assigned_names(node)
        self.params = {
            a.arg
            for a in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            )
        } if hasattr(node, "args") else set()
        #: nested function definitions visible by name
        self.nested: Dict[str, ast.AST] = {
            stmt.name: stmt
            for stmt in getattr(node, "body", [])
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "ScheduleSharedStateRule", ctx: FileContext):
        self.rule = rule
        self.ctx = ctx
        self.module_mutables = _assigned_names(ctx.tree)
        self.functions: Dict[str, ast.AST] = {
            stmt.name: stmt
            for stmt in ctx.tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.methods: Dict[str, Dict[str, ast.AST]] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self.methods[stmt.name] = {
                    child.name: child
                    for child in stmt.body
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
        self._class: Optional[str] = None
        self._scopes: List[_Scope] = []
        self.found: List[Violation] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        previous, self._class = self._class, node.name
        self.generic_visit(node)
        self._class = previous

    def visit_FunctionDef(self, node) -> None:
        self._scopes.append(_Scope(node))
        self.generic_visit(node)
        self._scopes.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _SCHEDULERS):
            return
        if len(node.args) < 2 or not _is_zero_delay(node):
            return
        callback = node.args[1]
        callee, closure_shared = self._resolve(callback)
        if callee is None:
            return
        shared = set(self.module_mutables) | closure_shared
        for _mutation, name in _mutations(callee, shared):
            origin = (
                "closure-shared" if name in closure_shared
                else "module-level"
            )
            target = ast.unparse(callback)
            self.found.append(
                self.rule.violation(
                    self.ctx,
                    node,
                    f"zero-delay {func.attr} runs {target} at the current "
                    f"instant, and it mutates {origin} {name!r}; the order "
                    f"against other same-timestamp entries is an insertion "
                    f"accident — add a time separation or verify with "
                    f"--race-check",
                )
            )
            return  # one violation per schedule site

    def _resolve(
        self, callback: ast.AST
    ) -> Tuple[Optional[ast.AST], Set[str]]:
        """The callee's AST plus the closure names it shares with the
        scheduling code (empty for module functions / methods)."""
        if isinstance(callback, ast.Lambda):
            return callback, self._enclosing_locals()
        if isinstance(callback, ast.Name):
            for scope in reversed(self._scopes):
                if callback.id in scope.nested:
                    return scope.nested[callback.id], self._enclosing_locals()
            return self.functions.get(callback.id), set()
        if (
            isinstance(callback, ast.Attribute)
            and isinstance(callback.value, ast.Name)
            and callback.value.id == "self"
            and self._class is not None
        ):
            return self.methods.get(self._class, {}).get(callback.attr), set()
        return None, set()

    def _enclosing_locals(self) -> Set[str]:
        names: Set[str] = set()
        for scope in self._scopes:
            names |= scope.locals | scope.params
        return names


@register
class ScheduleSharedStateRule(Rule):
    name = "schedule-shared-state"
    description = (
        "zero-delay scheduled callbacks must not mutate module-level or "
        "closure-shared state (same-timestamp order is an insertion "
        "accident; candidate schedule-order race)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        visitor = _Visitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.found
