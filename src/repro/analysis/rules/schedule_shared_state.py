"""schedule-shared-state: zero-delay callbacks mutating shared state.

The engine resolves same-timestamp heap entries by insertion sequence,
so a callback scheduled with ``delay=0`` (or at ``sim.now``) runs *at
the same instant* as every other entry already pending for that time —
in an order that is an accident of who called ``schedule_callback``
first.  If such a callback mutates state that other code can also see
at that instant (a module-level table, a closure variable shared with
the scheduling function), the final value depends on the tie-break: a
schedule-order race.

This is the static side of the dynamic detector in
:mod:`repro.analysis.race`: callback targets are resolved through the
simflow :class:`~repro.analysis.flow.callgraph.ModuleIndex` (module
functions, ``self`` methods through in-repo base classes, lexically
enclosing nested functions, lambdas, single-assignment aliases) and
the *callee's* body is inspected for mutations of module-level or
closure-shared names.  Sites it flags are exactly the candidates worth
running under ``python -m repro.analysis --race-check``.

Time separation (any non-zero delay) clears the hazard: the engine
orders distinct timestamps totally.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import ModuleIndex, assigned_names, own_nodes
from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: scheduling entry points (first positional arg is the delay / instant)
_SCHEDULERS = ("schedule_callback", "schedule_callback_at")

#: method names that mutate their receiver in place
_MUTATORS = {
    "append", "appendleft", "add", "extend", "update", "insert",
    "remove", "discard", "clear", "pop", "popleft", "popitem",
    "setdefault", "sort", "reverse", "push",
}


def _is_zero_delay(call: ast.Call) -> bool:
    """True when the schedule provably lands on the current instant."""
    if not call.args:
        return False
    when = call.args[0]
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "schedule_callback":
        return isinstance(when, ast.Constant) and when.value in (0, 0.0)
    # schedule_callback_at(<expr>.now, ...) / (<expr>._now, ...)
    return isinstance(when, ast.Attribute) and when.attr in ("now", "_now")


def _base_name(node: ast.AST) -> Optional[str]:
    """Leftmost Name of an attribute/subscript chain, or None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _mutations(callee: ast.AST, shared: Set[str]) -> List[Tuple[ast.AST, str]]:
    """(node, name) pairs where the callee body mutates a shared name."""
    found: List[Tuple[ast.AST, str]] = []
    declared: Set[str] = set()
    body = callee.body if isinstance(callee.body, list) else [callee.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                declared.update(node.names)
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared \
                            and target.id in shared:
                        found.append((node, target.id))
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        base = _base_name(target)
                        if base is not None and base != "self" and base in shared:
                            found.append((node, base))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                    base = _base_name(func.value)
                    if base is not None and base != "self" and base in shared:
                        found.append((node, base))
    return found


@register
class ScheduleSharedStateRule(Rule):
    name = "schedule-shared-state"
    description = (
        "zero-delay scheduled callbacks must not mutate module-level or "
        "closure-shared state (same-timestamp order is an insertion "
        "accident; candidate schedule-order race)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        index = ModuleIndex(ctx)
        module_mutables = assigned_names(ctx.tree)
        scopes = [(None, ctx.tree)] + [
            (fn, fn.node) for fn in index.functions.values()
        ]
        for fn, scope_node in scopes:
            for node in own_nodes(scope_node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute) and func.attr in _SCHEDULERS
                ):
                    continue
                if len(node.args) < 2 or not _is_zero_delay(node):
                    continue
                callback = node.args[1]
                callee = index.resolve_callback(callback, fn)
                if callee is None:
                    continue
                closure_shared: Set[str] = set()
                if fn is not None and callee.parent is not None:
                    # nested function / lambda: it can see (and race on)
                    # the locals of the scheduling function chain
                    closure_shared = index.enclosing_shared_names(fn)
                shared = set(module_mutables) | closure_shared
                for _mutation, name in _mutations(callee.node, shared):
                    origin = (
                        "closure-shared" if name in closure_shared
                        else "module-level"
                    )
                    target = ast.unparse(callback)
                    yield self.violation(
                        ctx,
                        node,
                        f"zero-delay {func.attr} runs {target} at the current "
                        f"instant, and it mutates {origin} {name!r}; the order "
                        f"against other same-timestamp entries is an insertion "
                        f"accident — add a time separation or verify with "
                        f"--race-check",
                    )
                    break  # one violation per schedule site
