"""The pluggable simlint rule set.

Each rule is a class with a unique ``name``, a one-line ``description``,
and a ``check(ctx)`` generator yielding
:class:`~repro.analysis.linter.Violation` records.  Registration is by
decorator; importing this package loads every built-in rule module so
``all_rules()`` reflects the full set.

Adding a rule: drop a module in this package, subclass :class:`Rule`,
decorate with :func:`register`, and import the module below.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Type

from repro.analysis.linter import FileContext, Violation


class Rule:
    """Base class for simlint rules."""

    #: Unique kebab-case identifier (used in reports and disable comments).
    name: str = ""
    #: One-line human description for ``--list-rules``.
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node, message: str) -> Violation:
        return ctx.violation(node, self.name, message)


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule by its name."""
    if not cls.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_rules(names: Iterable[str]) -> List[Rule]:
    """Look up rules by name; unknown names raise KeyError."""
    picked = []
    for name in names:
        if name not in _REGISTRY:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown rule {name!r} (known: {known})")
        picked.append(_REGISTRY[name])
    return picked


# Built-in rules: importing each module triggers its @register.
from repro.analysis.rules import (  # noqa: E402,F401
    callback_arity,
    cross_shard_state,
    direct_heapq,
    direct_tracer_append,
    mutable_default,
    or_default,
    schedule_shared_state,
    silent_except,
    slots_hot_path,
    unbatched_candidate,
    unguarded_obs_call,
    unordered_iter,
    unseeded_random,
    wall_clock,
    yield_event,
)
