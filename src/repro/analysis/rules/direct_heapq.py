"""direct-heapq: the scheduler owns the heap.

The event core (``repro.sim.engine``) keeps strict invariants on its
schedule: a unique monotone sequence number per entry for FIFO
tie-break, a near/far horizon split, and pooled timer entries that are
recycled at pop.  Model code that imports :mod:`heapq` and maintains
its own priority queue next to the scheduler tends to re-invent those
invariants badly — unordered ties, tombstone cancellation, wall-order
dependence.  Outside ``repro.sim``, schedule through the simulator
(``schedule_callback`` / ``schedule_timer`` / events) or use the
ordered containers in ``repro.sim.resources``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import FileContext, Violation
from repro.analysis.rules import Rule, register

#: Packages allowed to touch heapq directly: the event core itself and
#: its ordered-resource containers.
ALLOWED_PREFIX = "repro.sim"


@register
class DirectHeapqRule(Rule):
    name = "direct-heapq"
    description = (
        "no direct heapq use outside repro.sim; schedule through the "
        "simulator or use repro.sim.resources containers"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        module = ctx.module_name
        if module == ALLOWED_PREFIX or module.startswith(ALLOWED_PREFIX + "."):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module or ""]
            else:
                continue
            if any(name == "heapq" or name.startswith("heapq.") for name in names):
                yield self.violation(
                    ctx,
                    node,
                    "direct heapq import outside repro.sim; the scheduler "
                    "owns the heap — use schedule_callback/schedule_timer "
                    "or repro.sim.resources",
                )
