"""repro.analysis: static analysis + runtime invariants for the simulator.

Three sub-systems (ISSUE 2):

* **simlint** (:mod:`repro.analysis.linter`, :mod:`repro.analysis.rules`)
  -- an AST-based lint pass with repo-specific rules: simulated time
  only, seeded randomness, no ``x or Default()`` collaborator fallbacks,
  engine yield discipline, ``schedule_callback`` arity, deterministic
  iteration, ``__slots__`` on hot paths, no silent exception drops.
  Run with ``python -m repro.analysis src/``.
* **sanitizers** (:mod:`repro.analysis.sanitize`) -- runtime ownership
  and queue-invariant checking for communication segments and
  descriptor rings, armed by ``REPRO_SANITIZE=1``.
* **determinism harness** (:mod:`repro.analysis.determinism`) -- runs a
  benchmark twice under different ``PYTHONHASHSEED`` values and diffs
  the complete event traces (``python -m repro.analysis --determinism``).

This ``__init__`` stays import-light: the core data path imports
:mod:`repro.analysis.sanitize` through here, so the linter machinery
loads lazily on first attribute access.
"""

from __future__ import annotations

import os as _os

from repro.analysis import sanitize  # noqa: F401  (light: stdlib + errors)

if _os.environ.get("REPRO_RACE", "").strip().lower() not in (
    "", "0", "false", "off", "no",
):
    # Arm the schedule-order race detector for every simulator created
    # from here on (REPRO_RACE=1).  This runs at repro.analysis import
    # time, which every data-path module reaches before building a
    # Simulator; the programmatic equivalent is race.detected().
    from repro.analysis import race as _race

    _race.enable()

_LAZY = {
    "FileContext": "repro.analysis.linter",
    "LintError": "repro.analysis.linter",
    "Violation": "repro.analysis.linter",
    "iter_python_files": "repro.analysis.linter",
    "lint_file": "repro.analysis.linter",
    "lint_paths": "repro.analysis.linter",
    "Rule": "repro.analysis.rules",
    "all_rules": "repro.analysis.rules",
    "get_rules": "repro.analysis.rules",
    "register": "repro.analysis.rules",
    "run_ab": "repro.analysis.determinism",
    "trace_run": "repro.analysis.determinism",
    "RaceFinding": "repro.analysis.race",
    "RaceReport": "repro.analysis.race",
    "RaceTracker": "repro.analysis.race",
    "race_check": "repro.analysis.perturb",
}

__all__ = sorted(_LAZY) + ["sanitize"]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
