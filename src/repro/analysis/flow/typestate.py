"""Typestate / lifecycle checking of the U-Net API protocols.

For every function that creates a tracked token (see :mod:`.specs`),
run a forward may-analysis over its exception-edge CFG:

* **facts** — ``("env", name, token)`` binds a local name to a token;
  ``("tok", token, state)`` says the token may be in ``state`` here.
  A token is identified by its creation site ``(spec, line, col)``.
  The payload carried on ``tok`` facts is the witness path.
* **creation** (``off = seg.alloc(n)``) is a strong update: prior
  facts for the same site die (loop iterations), the name is rebound,
  and the *exception* edge out of the creating statement carries the
  pre-state — if ``alloc`` raises, no token was produced.
* **operations** walk the spec's state machine; an op in a ``bad``
  state reports a finding with the witness accumulated so far, then
  parks the token in an absorbing ``error`` state to avoid cascades.
* **escape** — a token passed to an unresolved call, stored into an
  attribute/container, returned, or yielded moves to an absorbing
  ``escaped`` state: ownership may have transferred, so neither leaks
  nor misuse are reported for it past that point.
* **leaks** — any token still in a ``leak_state`` (e.g. ``allocated``)
  at the normal or exceptional exit is reported at its creation site;
  the exceptional case names the statement whose may-raise edge
  skipped the cleanup.

One level of interprocedural summaries: a callee whose *direct body
prefix* (the statements guaranteed to execute first on every normal
path) applies a protocol op to one of its parameters is summarised,
and resolved calls to it apply that op to the argument — so
``self._release(off)`` counts as the ``free`` it performs, and a
second ``_release`` is a double free across the call boundary.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import (
    FunctionInfo,
    Program,
    own_nodes,
)
from repro.analysis.flow.cfg import CFG, EXCEPTION, build_cfg
from repro.analysis.flow.dataflow import Facts, ForwardAnalysis
from repro.analysis.flow.report import Finding
from repro.analysis.flow.specs import (
    ALL_SPECS,
    ARG0,
    CREATOR_METHODS,
    OPS_BY_METHOD,
    RECEIVER,
    OpRule,
    ProtocolSpec,
)

SPEC_BY_NAME = {spec.name: spec for spec in ALL_SPECS}

#: absorbing states (no transitions, no reports)
ESCAPED = "escaped"
ERROR = "error"

Token = Tuple[str, int, int]  # (spec name, creation line, creation col)


# --------------------------------------------------------------------------
# small AST helpers
# --------------------------------------------------------------------------

def _method_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _unwrap(expr: ast.AST) -> ast.AST:
    """Peel ``yield from`` / ``await`` / ``yield`` wrappers off a value."""
    while isinstance(expr, (ast.Await, ast.YieldFrom)) or (
        isinstance(expr, ast.Yield) and expr.value is not None
    ):
        expr = expr.value
    return expr


def _calls_in(expr: ast.AST) -> List[ast.Call]:
    """Calls evaluated by ``expr`` — skips lambda bodies (not run here)."""
    calls: List[ast.Call] = []
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call):
            calls.append(node)
        stack.extend(ast.iter_child_nodes(node))
    calls.reverse()  # roughly inner-before-outer ~ evaluation order
    return calls


def _names_in(expr: ast.AST) -> Set[str]:
    return {
        n.id
        for n in ast.walk(expr)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _captured_names(fn: ast.AST) -> Set[str]:
    """Free names a lambda / nested def may capture from the enclosing
    scope — tokens they close over escape (the closure may free or
    keep them alive past this function's lifetime)."""
    args = fn.args
    bound = {
        p.arg for p in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    }
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    loaded: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loaded.add(node.id)
                else:
                    bound.add(node.id)
    return loaded - bound


def _eval_exprs(stmt: ast.AST) -> List[ast.AST]:
    """The expressions actually evaluated when this CFG node executes.

    Compound statements contribute only their head expression — their
    bodies are separate CFG nodes.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, ast.ExceptHandler)):
        return []
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, ast.Assert):
        return [stmt.test] + ([stmt.msg] if stmt.msg is not None else [])
    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        return [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Delete):
        return []
    return []


def _positional_params(callee: FunctionInfo, call: ast.Call) -> List[str]:
    """Positional parameter names aligned with ``call.args`` (dropping
    ``self`` when the call goes through an attribute receiver)."""
    args = callee.node.args
    params = [p.arg for p in list(args.posonlyargs) + list(args.args)]
    if params and params[0] in ("self", "cls") and isinstance(
        call.func, ast.Attribute
    ):
        params = params[1:]
    return params


# --------------------------------------------------------------------------
# interprocedural summaries
# --------------------------------------------------------------------------

def param_op_summaries(
    program: Program,
) -> Dict[str, Dict[str, Tuple[ProtocolSpec, OpRule, str]]]:
    """``fn qualname -> {param name -> (spec, op rule, method)}`` for
    functions whose guaranteed body prefix applies a protocol op to a
    parameter.  Only the prefix of simple direct-body statements is
    scanned, so the op provably runs whenever the function returns
    normally from that prefix."""
    summaries: Dict[str, Dict[str, Tuple[ProtocolSpec, OpRule, str]]] = {}
    for fn in program.functions.values():
        if isinstance(fn.node, ast.Lambda):
            continue
        params = fn.param_names()
        found: Dict[str, Tuple[ProtocolSpec, OpRule, str]] = {}
        for stmt in fn.node.body:
            if not isinstance(stmt, (ast.Expr, ast.Assign, ast.AnnAssign, ast.Pass)):
                break  # control flow: no longer guaranteed to execute
            value = None
            if isinstance(stmt, ast.Expr):
                value = _unwrap(stmt.value)
            elif isinstance(stmt, ast.Assign):
                value = _unwrap(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = _unwrap(stmt.value)
            if not isinstance(value, ast.Call):
                continue
            method = _method_name(value)
            for spec, rule in OPS_BY_METHOD.get(method, ()):
                token_expr = _op_token_expr(value, rule)
                if (
                    isinstance(token_expr, ast.Name)
                    and token_expr.id in params
                    and token_expr.id not in found
                ):
                    found[token_expr.id] = (spec, rule, method)
        if found:
            summaries[fn.qualname] = found
    return summaries


def _op_token_expr(call: ast.Call, rule: OpRule) -> Optional[ast.AST]:
    if rule.token_role == ARG0:
        return call.args[0] if call.args else None
    if rule.token_role == RECEIVER and isinstance(call.func, ast.Attribute):
        return call.func.value
    return None


# --------------------------------------------------------------------------
# the per-function checker
# --------------------------------------------------------------------------

class _FunctionChecker:
    def __init__(
        self,
        fn: FunctionInfo,
        resolver,
        summaries: Dict[str, Dict[str, Tuple[ProtocolSpec, OpRule, str]]],
    ):
        self.fn = fn
        self.resolve = resolver
        self.summaries = summaries
        self._findings: Dict[Tuple, Finding] = {}
        self._created_here: List[Token] = []

    # -- entry -------------------------------------------------------------
    def run(self) -> List[Finding]:
        cfg = build_cfg(self.fn.node)
        analysis = ForwardAnalysis(cfg, self._transfer).run()
        self._report_leaks(cfg, analysis)
        return list(self._findings.values())

    # -- transfer ----------------------------------------------------------
    def _transfer(self, node, facts: Facts):
        self._created_here = []
        if node.stmt is not None:
            self._apply_stmt(node.stmt, facts)
        if not self._created_here:
            return facts, dict(facts)
        out_exc = {
            key: payload
            for key, payload in facts.items()
            if not any(tok in key for tok in self._created_here)
        }
        return facts, out_exc

    def _apply_stmt(self, stmt: ast.AST, facts: Facts) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._escape_names(_captured_names(stmt), facts)
            self._kill_env(stmt.name, facts)
            return
        if isinstance(stmt, ast.Assign):
            self._apply_assign(stmt, facts)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._apply_assign(
                    ast.Assign(targets=[stmt.target], value=stmt.value), facts
                )
            elif isinstance(stmt.target, ast.Name):
                self._kill_env(stmt.target.id, facts)
            return
        if isinstance(stmt, ast.AugAssign):
            self._eval_calls(stmt.value, facts)
            if isinstance(stmt.target, ast.Name):
                # offset arithmetic: the token no longer names the range
                self._escape_names({stmt.target.id}, facts)
                self._kill_env(stmt.target.id, facts)
            return
        if isinstance(stmt, ast.Expr):
            value = _unwrap(stmt.value)
            spec = self._creator_spec(value)
            if spec is not None and spec.flag_dropped_result:
                self._record(
                    spec.leak_rule or f"flow-{spec.name}-dropped",
                    value.lineno,
                    value.col_offset + 1,
                    f"result of {_method_name(value)}() discarded: the "
                    f"{spec.noun} can never be freed",
                    (
                        f"{spec.noun} allocated at line {value.lineno} "
                        "with its offset thrown away",
                    ),
                )
                self._eval_calls(stmt.value, facts, skip=value)
            else:
                self._eval_calls(stmt.value, facts)
            if isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
                inner = stmt.value.value
                if inner is not None and not isinstance(inner, ast.Call):
                    self._escape_names(_names_in(inner), facts)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval_calls(stmt.value, facts)
                self._escape_names(_names_in(stmt.value), facts)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._kill_env(target.id, facts)
            return
        if isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                self._kill_env(stmt.name, facts)
            return
        for expr in _eval_exprs(stmt):
            self._eval_calls(expr, facts)
        # loop / with targets rebind names
        bound: List[ast.AST] = []
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            bound = [stmt.target]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            bound = [i.optional_vars for i in stmt.items if i.optional_vars]
        for target in bound:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    self._kill_env(sub.id, facts)

    def _apply_assign(self, stmt: ast.Assign, facts: Facts) -> None:
        value = _unwrap(stmt.value)
        spec = self._creator_spec(value)
        name_targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
        other_targets = [t for t in stmt.targets if not isinstance(t, ast.Name)]
        self._eval_calls(stmt.value, facts, skip=value if spec else None)
        if other_targets:
            # self.x = off / table[k] = off: ownership moves out of scope
            self._escape_names(_names_in(stmt.value), facts)
            for target in other_targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name) and isinstance(
                        sub.ctx, ast.Store
                    ):
                        self._kill_env(sub.id, facts)
        if spec is not None and name_targets:
            token: Token = (spec.name, value.lineno, value.col_offset + 1)
            self._strong_update(token, facts)
            for name in name_targets:
                self._kill_env(name, facts)
                facts[("env", name, token)] = None
            facts[("tok", token, spec.initial)] = (
                f"{spec.noun} '{name_targets[0]}' created by "
                f"{_method_name(value)}() at line {value.lineno}",
            )
            self._created_here.append(token)
        elif isinstance(value, ast.Name):
            tokens = self._tokens_of(value.id, facts)
            for name in name_targets:
                self._kill_env(name, facts)
                for token in tokens:
                    facts[("env", name, token)] = None
        else:
            for name in name_targets:
                self._kill_env(name, facts)

    # -- calls -------------------------------------------------------------
    def _creator_spec(self, expr: ast.AST) -> Optional[ProtocolSpec]:
        if not isinstance(expr, ast.Call):
            return None
        method = _method_name(expr)
        for spec in ALL_SPECS:
            if spec.creates(expr, method):
                return spec
        return None

    def _eval_calls(
        self, expr: ast.AST, facts: Facts, skip: Optional[ast.AST] = None
    ) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Lambda):
                self._escape_names(_captured_names(sub), facts)
        for call in _calls_in(expr):
            if call is skip:
                continue
            method = _method_name(call)
            ops = OPS_BY_METHOD.get(method, ())
            handled = False
            for spec, rule in ops:
                token_expr = _op_token_expr(call, rule)
                if isinstance(token_expr, ast.Name):
                    if self._apply_op(
                        spec, rule, method, token_expr.id, call, facts
                    ):
                        handled = True
            if handled:
                continue
            if method in CREATOR_METHODS and self._creator_spec(call):
                # creator in a non-binding position: the fresh token's
                # handle flows into the surrounding expression — escaped
                # from birth, nothing to track.  Its args are lengths.
                continue
            self._apply_unknown_call(call, facts)

    def _apply_op(
        self,
        spec: ProtocolSpec,
        rule: OpRule,
        method: str,
        name: str,
        call: ast.Call,
        facts: Facts,
    ) -> bool:
        tokens = [t for t in self._tokens_of(name, facts) if t[0] == spec.name]
        touched = False
        for token in tokens:
            for state in self._states_of(token, facts):
                key = ("tok", token, state)
                if state in rule.ok:
                    witness = facts.pop(key)
                    step = (
                        f"{method}({name}) at line {call.lineno}: "
                        f"{state} -> {rule.ok[state]}"
                    )
                    facts.setdefault(
                        ("tok", token, rule.ok[state]), witness + (step,)
                    )
                    touched = True
                elif state in rule.bad:
                    rule_id, message = rule.bad[state]
                    witness = facts.pop(key)
                    self._record(
                        rule_id,
                        call.lineno,
                        call.col_offset + 1,
                        message,
                        witness
                        + (
                            f"{method}({name}) at line {call.lineno} "
                            f"while already '{state}'",
                        ),
                    )
                    facts.setdefault(("tok", token, ERROR), witness)
                    touched = True
        return touched

    def _apply_unknown_call(self, call: ast.Call, facts: Facts) -> None:
        callee = self.resolve(call)
        escapees: Set[str] = set()
        summary = (
            self.summaries.get(callee.qualname) if callee is not None else None
        )
        params = _positional_params(callee, call) if callee is not None else []
        for position, arg in enumerate(call.args):
            arg = _unwrap(arg)
            if isinstance(arg, ast.Name):
                if (
                    summary
                    and position < len(params)
                    and params[position] in summary
                ):
                    spec, rule, method = summary[params[position]]
                    self._apply_op(
                        spec,
                        rule,
                        f"{callee.name}->{method}",
                        arg.id,
                        call,
                        facts,
                    )
                    continue
                escapees.add(arg.id)
            else:
                escapees |= _names_in(arg)
        for keyword in call.keywords:
            escapees |= _names_in(keyword.value)
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            escapees.add(func.value.id)
        self._escape_names(escapees, facts)

    # -- fact manipulation -------------------------------------------------
    def _tokens_of(self, name: str, facts: Facts) -> List[Token]:
        return [key[2] for key in facts if key[0] == "env" and key[1] == name]

    def _states_of(self, token: Token, facts: Facts) -> List[str]:
        return [
            key[2] for key in facts if key[0] == "tok" and key[1] == token
        ]

    def _kill_env(self, name: str, facts: Facts) -> None:
        for key in [k for k in facts if k[0] == "env" and k[1] == name]:
            del facts[key]

    def _strong_update(self, token: Token, facts: Facts) -> None:
        for key in [k for k in facts if token in k]:
            del facts[key]

    def _escape_names(self, names: Iterable[str], facts: Facts) -> None:
        for name in names:
            for token in self._tokens_of(name, facts):
                for state in self._states_of(token, facts):
                    if state in (ESCAPED, ERROR):
                        continue
                    witness = facts.pop(("tok", token, state))
                    facts.setdefault(("tok", token, ESCAPED), witness)

    # -- reporting ---------------------------------------------------------
    def _record(
        self, rule: str, line: int, col: int, message: str, witness: Tuple
    ) -> None:
        key = (rule, line, col, message)
        if key in self._findings:
            return
        self._findings[key] = Finding(
            path=self.fn.ctx.path,
            line=line,
            col=col,
            rule=rule,
            message=message,
            function=self.fn.qualname,
            witness=tuple(witness),
        )

    def _report_leaks(self, cfg: CFG, analysis: ForwardAnalysis) -> None:
        name = self.fn.name
        for kind, facts in (
            ("exit", analysis.facts_at_exit()),
            ("exc", analysis.facts_at_exc_exit()),
        ):
            seen: Set[Token] = set()
            for key in sorted(
                (k for k in facts if k[0] == "tok"), key=lambda k: k[1]
            ):
                _, token, state = key
                spec = SPEC_BY_NAME[token[0]]
                if state not in spec.leak_states or token in seen:
                    continue
                seen.add(token)
                witness = facts[key]
                if kind == "exit":
                    message = (
                        f"{spec.noun} leaks: a path through {name}() "
                        "reaches the function exit without free()"
                    )
                    extra = ("function exit reached without free()",)
                else:
                    message = (
                        f"{spec.noun} leaks on an error path: an exception "
                        f"can unwind {name}() before the free()"
                    )
                    extra = self._raiser_steps(cfg, analysis, key) + (
                        "the exception propagates out of the function "
                        "before any free()",
                    )
                self._record(
                    spec.leak_rule, token[1], token[2], message, witness + extra
                )

    def _raiser_steps(
        self, cfg: CFG, analysis: ForwardAnalysis, key
    ) -> Tuple[str, ...]:
        """Name the statement whose may-raise edge carried the leak."""
        candidates = []
        for src, edge_kind in cfg.preds()[cfg.exc_exit]:
            if edge_kind != EXCEPTION:
                continue
            if key in analysis.exc_outs.get(src, ()):
                node = cfg.nodes[src]
                if node.line:
                    candidates.append(node.line)
        if not candidates:
            return ()
        line = min(candidates)
        text = ""
        if 0 < line <= len(self.fn.ctx.lines):
            text = self.fn.ctx.lines[line - 1].strip()
        return (f"`{text}` (line {line}) may raise, skipping the cleanup",)


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------

def _has_creator(fn: FunctionInfo) -> bool:
    for node in own_nodes(fn.node):
        if isinstance(node, ast.Call):
            method = _method_name(node)
            if method in CREATOR_METHODS and any(
                spec.creates(node, method) for spec in ALL_SPECS
            ):
                return True
    return False


def check_program(program: Program) -> List[Finding]:
    summaries = param_op_summaries(program)
    findings: List[Finding] = []
    for fn in program.functions.values():
        if isinstance(fn.node, ast.Lambda):
            continue
        if not _has_creator(fn):
            continue
        checker = _FunctionChecker(fn, program.resolver(fn), summaries)
        findings.extend(checker.run())
    return findings
