"""A small forward worklist dataflow engine over :mod:`.cfg` graphs.

Facts are dictionaries ``key -> payload``: the *key* is the lattice
element (its presence is the May-information), the *payload* is
metadata carried along (witness paths) that does **not** participate
in the fixpoint — the first payload reaching a key wins, so the
engine terminates as soon as the key sets stabilise.

The transfer function runs per node and returns two fact sets: one
for normal successors and one for exception successors.  This lets
clients model statements whose effect differs on the exceptional
route (e.g. an allocation that raises never produced its token).

Monotonicity contract: ``transfer`` must be a monotone function of
the key set (pointwise key filtering plus fixed additions), which
every client in this package satisfies by construction.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Tuple

from repro.analysis.flow.cfg import CFG, EXCEPTION, Node

Facts = Dict[Hashable, object]
#: transfer(node, facts_in) -> (facts_out_normal, facts_out_exception)
Transfer = Callable[[Node, Facts], Tuple[Facts, Facts]]


def merge_into(target: Facts, source: Facts) -> bool:
    """May-union: add unseen keys; first payload wins.  True if grew."""
    changed = False
    for key, payload in source.items():
        if key not in target:
            target[key] = payload
            changed = True
    return changed


class ForwardAnalysis:
    """Run a forward may-analysis to fixpoint over one CFG."""

    def __init__(self, cfg: CFG, transfer: Transfer):
        self.cfg = cfg
        self.transfer = transfer
        self.ins: Dict[int, Facts] = {node.index: {} for node in cfg.nodes}
        self.outs: Dict[int, Facts] = {node.index: {} for node in cfg.nodes}
        self.exc_outs: Dict[int, Facts] = {node.index: {} for node in cfg.nodes}

    def run(self) -> "ForwardAnalysis":
        queued = {self.cfg.entry}
        visited = set()
        work = deque([self.cfg.entry])
        while work:
            index = work.popleft()
            queued.discard(index)
            visited.add(index)
            node = self.cfg.nodes[index]
            out_normal, out_exc = self.transfer(node, dict(self.ins[index]))
            self.outs[index] = out_normal
            self.exc_outs[index] = out_exc
            for dst, kind in self.cfg.succ[index]:
                source = out_exc if kind == EXCEPTION else out_normal
                grew = merge_into(self.ins[dst], source)
                if (grew or dst not in visited) and dst not in queued:
                    queued.add(dst)
                    work.append(dst)
        return self

    def facts_at_exit(self) -> Facts:
        return self.ins[self.cfg.exit]

    def facts_at_exc_exit(self) -> Facts:
        return self.ins[self.cfg.exc_exit]
