"""Per-function control-flow graphs with exception edges.

Statement-granularity CFG: every simple statement is a node; ``if`` /
loops / ``try`` contribute branch structure.  The distinguishing
feature for the typestate clients is the **exception edges**: any
statement that may raise gets an edge to the innermost matching
``except`` handler chain, through ``finally`` blocks, and ultimately
to the function's *exceptional exit* — so "an exception here skips the
``free()`` below" is a path the dataflow engine actually walks.

May-raise model (see DESIGN.md §9 for the soundness discussion):

* explicit ``raise`` / ``assert`` statements;
* any statement containing a call, EXCEPT calls whose method name is
  in :data:`NON_RAISING` — the simulator's cost-charging generators
  (``host.compute(...)``, ``host.copy(...)``, ``host.syscall()``) and
  observability guards, which never raise in practice and would
  otherwise drown real error paths in noise;
* ``yield`` / ``yield from`` of a non-whitelisted expression (a
  simulated process can be interrupted or the awaited event can fail).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: method names treated as never-raising: the simulator's cost-charging
#: generators / observability guards, plus total builtins — without
#: these, every ``host.copy(len(data))`` would count as an error path.
NON_RAISING = frozenset(
    {
        "compute",
        "copy",
        "syscall",
        "timeout",
        "begin",
        "end",
        "annotate",
        "bump",
        "sample",
        "charge",
        "append",
        "info",
        "debug",
        "len",
        "min",
        "max",
        "abs",
        "range",
        "enumerate",
        "zip",
        "sorted",
        "isinstance",
        "hasattr",
        "getattr",
        "bool",
        "repr",
        "format",
    }
)

#: edge kinds
NORMAL = "normal"
EXCEPTION = "exception"


@dataclass
class Node:
    index: int
    stmt: Optional[ast.AST]  # None for the synthetic entry/exit/join nodes
    label: str
    line: int = 0
    col: int = 0
    may_raise: bool = False


@dataclass
class CFG:
    nodes: List[Node] = field(default_factory=list)
    #: node index -> [(successor index, edge kind)]
    succ: Dict[int, List[Tuple[int, str]]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 1
    exc_exit: int = 2

    def node(self, stmt: Optional[ast.AST], label: str, may_raise: bool = False) -> int:
        index = len(self.nodes)
        self.nodes.append(
            Node(
                index=index,
                stmt=stmt,
                label=label,
                line=getattr(stmt, "lineno", 0),
                col=getattr(stmt, "col_offset", -1) + 1,
                may_raise=may_raise,
            )
        )
        self.succ[index] = []
        return index

    def edge(self, src: int, dst: int, kind: str = NORMAL) -> None:
        if (dst, kind) not in self.succ[src]:
            self.succ[src].append((dst, kind))

    def preds(self) -> Dict[int, List[Tuple[int, str]]]:
        back: Dict[int, List[Tuple[int, str]]] = {n.index: [] for n in self.nodes}
        for src, edges in self.succ.items():
            for dst, kind in edges:
                back[dst].append((src, kind))
        return back


def _expr_may_raise(node: ast.AST) -> bool:
    """True when evaluating ``node`` can raise under the model above."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else ""
            )
            if name not in NON_RAISING:
                return True
        elif isinstance(sub, (ast.Yield, ast.YieldFrom)):
            inner = sub.value
            if inner is None:
                continue
            if isinstance(inner, ast.Call):
                func = inner.func
                name = (
                    func.attr
                    if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else ""
                )
                if name in NON_RAISING:
                    continue
            return True
    return False


class _TryFrame:
    __slots__ = (
        "handler_heads",
        "catch_all",
        "finally_join",
        "in_body",
        "saw_exception",
        "saw_return",
    )

    def __init__(self) -> None:
        self.handler_heads: List[int] = []
        self.catch_all = False
        self.finally_join: Optional[int] = None
        self.in_body = True
        self.saw_exception = False
        self.saw_return = False


class _Builder:
    def __init__(self, fn_node: ast.AST):
        self.cfg = CFG()
        self.cfg.entry = self.cfg.node(None, "entry")
        self.cfg.exit = self.cfg.node(None, "exit")
        self.cfg.exc_exit = self.cfg.node(None, "exc-exit")
        self.frames: List[_TryFrame] = []
        #: (continue_target, break_sinks) per enclosing loop
        self.loops: List[Tuple[int, List[int]]] = []
        body = fn_node.body if isinstance(fn_node.body, list) else [
            ast.Expr(value=fn_node.body)
        ]
        frontier = self._build_body(body, [self.cfg.entry])
        for node in frontier:
            self.cfg.edge(node, self.cfg.exit)

    # -- exception routing ------------------------------------------------
    def _exc_targets(self) -> List[int]:
        targets: List[int] = []
        for frame in reversed(self.frames):
            if frame.in_body and frame.handler_heads:
                targets.extend(frame.handler_heads)
                if frame.catch_all:
                    return targets
            if frame.finally_join is not None:
                frame.saw_exception = True
                targets.append(frame.finally_join)
                return targets
        targets.append(self.cfg.exc_exit)
        return targets

    def _wire_exceptions(self, node: int) -> None:
        for target in self._exc_targets():
            self.cfg.edge(node, target, EXCEPTION)

    # -- statement building -----------------------------------------------
    def _add(
        self, frontier: List[int], stmt: ast.AST, label: str, may_raise: bool
    ) -> int:
        node = self.cfg.node(stmt, label, may_raise)
        for src in frontier:
            self.cfg.edge(src, node)
        if may_raise:
            self._wire_exceptions(node)
        return node

    def _build_body(self, body: Sequence[ast.AST], frontier: List[int]) -> List[int]:
        for stmt in body:
            frontier = self._build_stmt(stmt, frontier)
        return frontier

    def _build_stmt(self, stmt: ast.AST, frontier: List[int]) -> List[int]:
        if not frontier:
            return []  # unreachable code
        if isinstance(stmt, (ast.If,)):
            test = self._add(frontier, stmt, "if", _expr_may_raise(stmt.test))
            then = self._build_body(stmt.body, [test])
            other = self._build_body(stmt.orelse, [test]) if stmt.orelse else [test]
            return then + other
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head_expr = stmt.test if isinstance(stmt, ast.While) else stmt.iter
            head = self._add(frontier, stmt, "loop", _expr_may_raise(head_expr))
            breaks: List[int] = []
            self.loops.append((head, breaks))
            body_exits = self._build_body(stmt.body, [head])
            self.loops.pop()
            for node in body_exits:
                self.cfg.edge(node, head)
            after = self._build_body(stmt.orelse, [head]) if stmt.orelse else [head]
            return after + breaks
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._add(
                frontier,
                stmt,
                "with",
                any(_expr_may_raise(i.context_expr) for i in stmt.items),
            )
            return self._build_body(stmt.body, [head])
        if isinstance(stmt, ast.Return):
            node = self._add(
                frontier,
                stmt,
                "return",
                _expr_may_raise(stmt.value) if stmt.value else False,
            )
            self._route_return(node)
            return []
        if isinstance(stmt, ast.Raise):
            node = self.cfg.node(stmt, "raise", True)
            for src in frontier:
                self.cfg.edge(src, node)
            self._wire_exceptions(node)
            return []
        if isinstance(stmt, ast.Assert):
            node = self._add(frontier, stmt, "assert", True)
            return [node]
        if isinstance(stmt, ast.Break):
            node = self._add(frontier, stmt, "break", False)
            if self.loops:
                self.loops[-1][1].append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self._add(frontier, stmt, "continue", False)
            if self.loops:
                self.cfg.edge(node, self.loops[-1][0])
            return []
        # plain statement (expression, assignment, pass, import, def, ...)
        label = type(stmt).__name__.lower()
        return [self._add(frontier, stmt, label, _expr_may_raise(stmt))]

    def _route_return(self, node: int) -> None:
        for frame in reversed(self.frames):
            if frame.finally_join is not None:
                frame.saw_return = True
                self.cfg.edge(node, frame.finally_join)
                return
        self.cfg.edge(node, self.cfg.exit)

    def _build_try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        frame = _TryFrame()
        for handler in stmt.handlers:
            head = self.cfg.node(handler, "except")
            frame.handler_heads.append(head)
            if handler.type is None:
                frame.catch_all = True
            else:
                ref = None
                try:
                    ref = ast.unparse(handler.type)
                except (ValueError, AttributeError):  # pragma: no cover
                    pass
                if ref in ("Exception", "BaseException"):
                    frame.catch_all = True
        if stmt.finalbody:
            frame.finally_join = self.cfg.node(None, "finally")
        self.frames.append(frame)
        body_exits = self._build_body(stmt.body, frontier)
        body_exits = self._build_body(stmt.orelse, body_exits)
        frame.in_body = False
        handler_exits: List[int] = []
        for head, handler in zip(frame.handler_heads, stmt.handlers):
            handler_exits.extend(self._build_body(handler.body, [head]))
        self.frames.pop()
        if frame.finally_join is None:
            return body_exits + handler_exits
        # Route every normal completion through the finally body.
        join = frame.finally_join
        for node in body_exits + handler_exits:
            self.cfg.edge(node, join)
        finally_exits = self._build_body(stmt.finalbody, [join])
        if frame.saw_exception:
            # the exception continues outward after the finally body
            saved = list(self.frames)
            for node in finally_exits:
                for target in self._exc_targets():
                    self.cfg.edge(node, target, EXCEPTION)
            self.frames = saved
        if frame.saw_return:
            for node in finally_exits:
                self.cfg.edge(node, self.cfg.exit)
        if not (body_exits or handler_exits):
            # only exceptional/return routes enter the finally
            return []
        return finally_exits


def build_cfg(fn_node: ast.AST) -> CFG:
    """Build the CFG of one function/lambda AST node."""
    return _Builder(fn_node).cfg


def loop_depths(scope: ast.AST) -> Dict[int, int]:
    """``id(node) -> loop-nesting depth`` for every AST node of one
    function scope, without descending into nested function/class defs.

    Depth counts *per-iteration* execution: a loop statement itself sits
    at its enclosing depth, its body (and a ``while`` test, re-evaluated
    each pass) one deeper.  Comprehensions count as a loop for their
    element/condition expressions; the first generator's iterable is
    evaluated once and stays at the enclosing depth.

    A loop whose body ``yield``\\ s (a process main loop: one iteration
    per awaited event) does NOT deepen -- its body is per-event work,
    not per-event-amplified work.  Inner non-yielding loops still do.
    This is the nesting index the simcost model exponentiates -- see
    DESIGN.md §10.
    """
    depths: Dict[int, int] = {}

    def yields_per_iteration(body: Sequence[ast.AST]) -> bool:
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return False

    def visit(node: ast.AST, depth: int) -> None:
        depths[id(node)] = depth
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            return  # the def itself has a depth; its body is another scope
        if isinstance(node, (ast.For, ast.AsyncFor)):
            inner = depth if yields_per_iteration(node.body) else depth + 1
            visit(node.iter, depth)
            visit(node.target, inner)
            for child in node.body + node.orelse:
                visit(child, inner)
            return
        if isinstance(node, ast.While):
            inner = depth if yields_per_iteration(node.body) else depth + 1
            visit(node.test, inner)
            for child in node.body + node.orelse:
                visit(child, inner)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            first = True
            for gen in node.generators:
                visit(gen.iter, depth if first else depth + 1)
                visit(gen.target, depth + 1)
                for cond in gen.ifs:
                    visit(cond, depth + 1)
                first = False
            if isinstance(node, ast.DictComp):
                visit(node.key, depth + 1)
                visit(node.value, depth + 1)
            else:
                visit(node.elt, depth + 1)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, depth)

    body = scope.body if isinstance(scope.body, list) else [scope.body]
    for stmt in body:
        visit(stmt, 0)
    return depths
