"""Declarative typestate protocol specs for the U-Net API.

Each :class:`ProtocolSpec` names the operations that create a tracked
token (the *resource handle*: a segment offset, a receive descriptor,
an endpoint, a timer handle), the state machine its operations walk,
and which states constitute a leak if they survive to a function
exit.  The checker (:mod:`.typestate`) is generic over these specs —
adding a protocol is adding data, not code.

Op matching is by method name on tracked tokens only, so unrelated
classes that happen to share a method name are never flagged: a token
must first be produced by one of the spec's ``creators``.

The specs encode §3.1/§3.4 of the paper:

* **segment-buffer** — a buffer inside a communication segment:
  ``alloc`` → write/read → ``free`` exactly once on every path,
  including exception edges (the PR-2 sanitizers' double-free /
  use-after-free / leak checks, statically).
* **recv-descriptor** — a consumed receive descriptor's buffers may
  be reposted to the free queue once, and never read after reposting
  (the NI may have overwritten them: recycle-before-consume).
* **endpoint** — create → use → destroy; no operation after destroy.
* **timer-handle** — ``schedule_timer`` → ``cancel`` once; handles
  are pooled, so a second ``cancel`` may kill an unrelated timer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

#: token position in an op call
ARG0 = "arg0"
RECEIVER = "receiver"


@dataclass(frozen=True)
class OpRule:
    """One operation of a protocol: allowed transitions + violations."""

    #: state -> successor state (operation is legal in these states)
    ok: Mapping[str, str]
    #: state -> (finding rule, message) when called in that state
    bad: Mapping[str, Tuple[str, str]]
    token_role: str = ARG0


@dataclass(frozen=True)
class ProtocolSpec:
    name: str
    #: human noun for messages ("segment buffer", "receive descriptor")
    noun: str
    #: method names whose *result* is a new token
    creators: frozenset
    initial: str
    ops: Mapping[str, OpRule]
    #: states that must not reach a function exit (else: leak)
    leak_states: frozenset = frozenset()
    leak_rule: str = ""
    #: flag `x.alloc(n)` as a bare statement (result dropped = instant leak)
    flag_dropped_result: bool = False
    #: optional predicate vetting a candidate creator call
    creator_guard: Optional[Callable[[ast.Call], bool]] = None

    def creates(self, call: ast.Call, method: str) -> bool:
        if method not in self.creators:
            return False
        if self.creator_guard is not None and not self.creator_guard(call):
            return False
        return True


def _alloc_guard(call: ast.Call) -> bool:
    """CommSegment.alloc takes a length; the Split-C runtime's
    ``sc.alloc("name", shape)`` takes a name string — exclude it."""
    if not call.args:
        return False
    first = call.args[0]
    return not (isinstance(first, ast.Constant) and isinstance(first.value, str))


SEGMENT_BUFFER = ProtocolSpec(
    name="segment-buffer",
    noun="segment buffer",
    creators=frozenset({"alloc"}),
    creator_guard=_alloc_guard,
    initial="allocated",
    ops={
        "free": OpRule(
            ok={"allocated": "freed"},
            bad={
                "freed": (
                    "flow-use-after-free",
                    "double free of a segment buffer: this offset was "
                    "already freed on a path reaching here",
                ),
            },
        ),
        "write": OpRule(
            ok={"allocated": "allocated"},
            bad={
                "freed": (
                    "flow-use-after-free",
                    "write to a freed segment buffer: the allocator may "
                    "have handed this range to another message",
                ),
            },
        ),
        "read": OpRule(
            ok={"allocated": "allocated"},
            bad={
                "freed": (
                    "flow-use-after-free",
                    "read of a freed segment buffer: the allocator may "
                    "have handed this range to another message",
                ),
            },
        ),
        "write_segment": OpRule(
            ok={"allocated": "allocated"},
            bad={
                "freed": (
                    "flow-use-after-free",
                    "write to a freed segment buffer: the allocator may "
                    "have handed this range to another message",
                ),
            },
        ),
        "read_segment": OpRule(
            ok={"allocated": "allocated"},
            bad={
                "freed": (
                    "flow-use-after-free",
                    "read of a freed segment buffer: the allocator may "
                    "have handed this range to another message",
                ),
            },
        ),
        "peek_segment": OpRule(
            ok={"allocated": "allocated"},
            bad={
                "freed": (
                    "flow-use-after-free",
                    "read of a freed segment buffer: the allocator may "
                    "have handed this range to another message",
                ),
            },
        ),
    },
    leak_states=frozenset({"allocated"}),
    leak_rule="flow-segment-leak",
    flag_dropped_result=True,
)


RECV_DESCRIPTOR = ProtocolSpec(
    name="recv-descriptor",
    noun="receive descriptor",
    creators=frozenset({"recv", "recv_poll"}),
    initial="received",
    ops={
        "peek_payload": OpRule(
            ok={"received": "received"},
            bad={
                "recycled": (
                    "flow-descriptor-reuse",
                    "payload read after repost_free: the buffers were "
                    "recycled onto the free queue and the NI may already "
                    "have overwritten them (consume before reposting)",
                ),
            },
        ),
        "recv_payload": OpRule(
            ok={"received": "received"},
            bad={
                "recycled": (
                    "flow-descriptor-reuse",
                    "payload read after repost_free: the buffers were "
                    "recycled onto the free queue and the NI may already "
                    "have overwritten them (consume before reposting)",
                ),
            },
        ),
        "repost_free": OpRule(
            ok={"received": "recycled"},
            bad={
                "recycled": (
                    "flow-descriptor-reuse",
                    "double repost_free of one receive descriptor: its "
                    "buffers would sit twice on the free queue and get "
                    "handed to two messages at once",
                ),
            },
        ),
    },
)


ENDPOINT = ProtocolSpec(
    name="endpoint",
    noun="endpoint",
    creators=frozenset({"create_endpoint"}),
    initial="created",
    ops=dict(
        [
            (
                "destroy_endpoint",
                OpRule(
                    ok={"created": "destroyed"},
                    bad={
                        "destroyed": (
                            "flow-endpoint-use",
                            "double destroy of an endpoint",
                        ),
                    },
                ),
            ),
        ]
        + [
            (
                op,
                OpRule(
                    ok={"created": "created"},
                    bad={
                        "destroyed": (
                            "flow-endpoint-use",
                            f"{op}() on a destroyed endpoint: every "
                            "application-facing operation raises once the "
                            "kernel agent has torn the endpoint down",
                        ),
                    },
                    token_role=RECEIVER,
                ),
            )
            for op in (
                "post_send",
                "post_free",
                "recv_poll",
                "recv_drain",
                "wait_recv",
                "deliver",
            )
        ]
    ),
)


TIMER_HANDLE = ProtocolSpec(
    name="timer-handle",
    noun="timer handle",
    creators=frozenset({"schedule_timer"}),
    initial="armed",
    ops={
        "cancel": OpRule(
            ok={"armed": "cancelled"},
            bad={
                "cancelled": (
                    "flow-stale-timer",
                    "cancel() of an already-cancelled timer handle: the "
                    "engine pools handles, so a stale cancel can disarm an "
                    "unrelated, newer timer that reused the object",
                ),
            },
            token_role=RECEIVER,
        ),
    },
)


ALL_SPECS: Tuple[ProtocolSpec, ...] = (
    SEGMENT_BUFFER,
    RECV_DESCRIPTOR,
    ENDPOINT,
    TIMER_HANDLE,
)

#: method name -> [(spec, op rule)] across all specs
OPS_BY_METHOD: Dict[str, list] = {}
for _spec in ALL_SPECS:
    for _method, _rule in _spec.ops.items():
        OPS_BY_METHOD.setdefault(_method, []).append((_spec, _rule))

#: every creator method name
CREATOR_METHODS = frozenset().union(*(s.creators for s in ALL_SPECS))
