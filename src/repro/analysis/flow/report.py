"""Finding records and report rendering for simflow.

A :class:`Finding` is simlint's ``Violation`` plus a **witness path**:
the sequence of source events (allocation, transitions, the may-raise
statement, the exit kind) that proves the protocol breach, rendered
indented under the ``file:line:col`` headline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class Finding:
    """One simflow finding at a precise position, with its witness."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    function: str = ""
    witness: Tuple[str, ...] = field(default_factory=tuple)

    def format(self) -> str:
        head = f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"
        if not self.witness:
            return head
        steps = "\n".join(f"    {i + 1}. {s}" for i, s in enumerate(self.witness))
        return f"{head}\n  witness path:\n{steps}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "function": self.function,
            "witness": list(self.witness),
        }


def render_text(findings: List[Finding]) -> str:
    return "\n".join(f.format() for f in findings)
