"""Determinism inference: a purity lattice over the call graph.

Every function is classified on the three-point lattice

    sim-pure  <  seeded-stochastic  <  nondeterministic

* **direct evidence** for *nondeterministic* comes from the existing
  syntactic simlint rules — wall-clock, unseeded-random and
  unordered-iter — re-run per file, honouring their ``# simlint:
  disable`` comments.  Reusing the rules (not a re-implementation)
  means the interprocedural pass agrees with the syntactic one by
  construction, and a deliberately disabled benchmark-timing site
  never poisons the lattice.
* **direct evidence** for *seeded-stochastic* is a seeded RNG
  construction (``random.Random(seed)``, ``default_rng(seed)``) or a
  draw from an rng-named receiver (``rng`` / ``_rng`` /
  ``random_state`` variables and attributes).
* the level then propagates caller-ward over the program call graph to
  a fixpoint: you are at least as nondeterministic as anything you
  call.

Findings:

* ``flow-nondet`` — every direct evidence site (same sites the
  syntactic rules flag, now attributed to their enclosing function);
* ``flow-nondet-call`` — a call site inside an event-callback-
  reachable function whose callee is (transitively) nondeterministic
  while the caller itself has no direct evidence on that line: the
  interprocedural case the syntactic rules cannot see.  The witness
  walks the call chain down to a concrete evidence site.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import FunctionInfo, ModuleIndex, Program
from repro.analysis.flow.report import Finding
from repro.analysis.rules.unordered_iter import UnorderedIterRule
from repro.analysis.rules.unseeded_random import SEED_REQUIRED, UnseededRandomRule
from repro.analysis.rules.wall_clock import WallClockRule

SIM_PURE = "sim-pure"
SEEDED = "seeded-stochastic"
NONDET = "nondeterministic"

_ORDER = {SIM_PURE: 0, SEEDED: 1, NONDET: 2}

#: receiver names treated as seeded RNG instances.
RNG_NAMES = frozenset({"rng", "_rng", "random_state", "rand", "_rand"})

#: rules supplying direct nondeterminism evidence.
_EVIDENCE_RULES = (WallClockRule, UnseededRandomRule, UnorderedIterRule)

#: (line, col, reason, source rule name)
Evidence = Tuple[int, int, str, str]


def _join(a: str, b: str) -> str:
    return a if _ORDER[a] >= _ORDER[b] else b


def direct_evidence(index: ModuleIndex) -> List[Evidence]:
    """Nondeterminism evidence sites in one file, via the syntactic
    rules, with simlint *and* simflow disables honoured."""
    sites: List[Evidence] = []
    for rule_cls in _EVIDENCE_RULES:
        rule = rule_cls()
        for violation in rule.check(index.ctx):
            if index.ctx.is_disabled(violation.rule, violation.line):
                continue
            if index.is_disabled("flow-nondet", violation.line):
                continue
            sites.append(
                (violation.line, violation.col, violation.message, violation.rule)
            )
    sites.sort()
    return sites


def _owner_of(index: ModuleIndex, line: int) -> Optional[FunctionInfo]:
    """The innermost function whose span contains ``line``."""
    best: Optional[FunctionInfo] = None
    best_span = None
    for fn in index.functions.values():
        start = getattr(fn.node, "lineno", None)
        end = getattr(fn.node, "end_lineno", None)
        if start is None or end is None or not (start <= line <= end):
            continue
        span = end - start
        if best_span is None or span < best_span:
            best, best_span = fn, span
    return best


def _seeded_evidence(fn: FunctionInfo) -> List[Evidence]:
    """Seeded-stochastic sites: seeded RNG construction or a draw from
    an rng-named receiver."""
    from repro.analysis.flow.callgraph import own_nodes

    sites: List[Evidence] = []
    for node in own_nodes(fn.node):
        if not isinstance(node, ast.Call):
            continue
        qual = fn.ctx.qualified_name(node.func)
        if qual in SEED_REQUIRED and (node.args or node.keywords):
            sites.append(
                (
                    node.lineno,
                    node.col_offset + 1,
                    f"seeded RNG constructed via {qual}(...)",
                    "seeded-rng",
                )
            )
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            base_name = ""
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute) and isinstance(
                base.value, ast.Name
            ) and base.value.id == "self":
                base_name = base.attr
            if base_name in RNG_NAMES:
                sites.append(
                    (
                        node.lineno,
                        node.col_offset + 1,
                        f"draw from seeded RNG '{base_name}'",
                        "seeded-rng",
                    )
                )
    return sites


class Classification:
    """The computed lattice: levels plus the evidence that caused them."""

    def __init__(self) -> None:
        #: qualname (or "<module>:path") -> level
        self.levels: Dict[str, str] = {}
        #: qualname -> direct evidence sites
        self.evidence: Dict[str, List[Evidence]] = {}
        #: qualname -> callee qualname blamed for an inherited level
        self.blame: Dict[str, Tuple[str, int]] = {}

    def level(self, qualname: str) -> str:
        return self.levels.get(qualname, SIM_PURE)


def classify(program: Program) -> Classification:
    result = Classification()
    module_sites: Dict[str, List[Evidence]] = {}

    for index in program.indexes:
        for line, col, reason, rule in direct_evidence(index):
            owner = _owner_of(index, line)
            if owner is None:
                module_sites.setdefault(index.ctx.path, []).append(
                    (line, col, reason, rule)
                )
                continue
            result.evidence.setdefault(owner.qualname, []).append(
                (line, col, reason, rule)
            )
            result.levels[owner.qualname] = NONDET
        for fn in index.functions.values():
            if isinstance(fn.node, ast.Lambda):
                continue
            for site in _seeded_evidence(fn):
                result.evidence.setdefault(fn.qualname, []).append(site)
                result.levels[fn.qualname] = _join(
                    result.level(fn.qualname), SEEDED
                )
    result.module_sites = module_sites  # type: ignore[attr-defined]

    # propagate caller-ward to fixpoint
    callers: Dict[str, List[Tuple[str, int]]] = {}
    for site in program.edges:
        callers.setdefault(site.callee, []).append((site.caller, site.line))
    work = [q for q in result.levels if result.levels[q] != SIM_PURE]
    while work:
        callee = work.pop()
        level = result.level(callee)
        for caller, line in callers.get(callee, ()):
            if _ORDER[result.level(caller)] < _ORDER[level]:
                result.levels[caller] = level
                result.blame.setdefault(caller, (callee, line))
                work.append(caller)
    return result


def _evidence_chain(
    classification: Classification, qualname: str, limit: int = 8
) -> Tuple[str, ...]:
    """Walk blame links from ``qualname`` down to a direct site."""
    steps: List[str] = []
    current = qualname
    seen: Set[str] = set()
    while current not in classification.evidence and len(steps) < limit:
        if current in seen:
            break
        seen.add(current)
        nxt = classification.blame.get(current)
        if nxt is None:
            break
        callee, line = nxt
        steps.append(f"{current} calls {callee} at line {line}")
        current = callee
    for line, _col, reason, rule in classification.evidence.get(current, ())[:1]:
        steps.append(f"{current} at line {line}: {reason} [{rule}]")
    return tuple(steps)


def check_program(program: Program) -> List[Finding]:
    classification = classify(program)
    findings: List[Finding] = []

    # direct sites — everything the syntactic rules know, re-attributed
    for index in program.indexes:
        path = index.ctx.path
        for qualname, sites in classification.evidence.items():
            fn = program.functions.get(qualname)
            if fn is None or fn.ctx.path != path:
                continue
            for line, col, reason, rule in sites:
                if rule == "seeded-rng":
                    continue  # seeded draws are allowed; classification only
                findings.append(
                    Finding(
                        path=path,
                        line=line,
                        col=col,
                        rule="flow-nondet",
                        message=(
                            f"{reason} [function {fn.name}() is "
                            "nondeterministic]"
                        ),
                        function=qualname,
                        witness=(),
                    )
                )
        for line, col, reason, rule in getattr(
            classification, "module_sites", {}
        ).get(path, ()):
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    col=col,
                    rule="flow-nondet",
                    message=f"{reason} [at module scope]",
                    function="<module>",
                    witness=(),
                )
            )

    # interprocedural: callback-reachable callers of nondet callees
    reachable = program.reachable_from_callbacks()
    reported: Set[Tuple[str, str, int]] = set()
    for site in program.edges:
        if site.caller not in reachable:
            continue
        if classification.level(site.callee) != NONDET:
            continue
        caller_fn = program.functions.get(site.caller)
        callee_fn = program.functions.get(site.callee)
        if caller_fn is None or callee_fn is None:
            continue
        # skip when the callee's direct evidence IS this very line
        # (the flow-nondet finding already covers it)
        direct_here = any(
            line == site.line
            for line, _c, _r, _ru in classification.evidence.get(
                site.caller, ()
            )
        )
        if direct_here:
            continue
        key = (site.caller, site.callee, site.line)
        if key in reported:
            continue
        reported.add(key)
        chain = _evidence_chain(classification, site.callee)
        findings.append(
            Finding(
                path=caller_fn.ctx.path,
                line=site.line,
                col=site.col,
                rule="flow-nondet-call",
                message=(
                    f"call to nondeterministic {callee_fn.name}() from "
                    f"event-callback-reachable {caller_fn.name}(): host "
                    "state leaks into simulated time"
                ),
                function=site.caller,
                witness=(f"{site.caller} calls {site.callee}",) + chain,
            )
        )
    return findings
