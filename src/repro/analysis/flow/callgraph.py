"""Module-level call graph with alias-aware resolution.

Two layers:

* :class:`ModuleIndex` — the lexical index of ONE parsed file: every
  function/method (including nested ones) with its enclosing scope
  chain, per-scope local names, class attribute types inferred from
  ``self.x = ClassName(...)`` / annotated parameters, and resolution
  of callback references (``self.method``, nested functions, module
  functions, aliases).  The migrated simlint rules
  (``schedule-shared-state``, ``cross-shard-state``) run on this layer
  alone, keeping their per-file semantics.

* :class:`Program` — the whole-repo graph: ModuleIndexes for every
  file, cross-module import resolution, call edges (plain calls and
  ``schedule_callback`` / ``schedule_timer`` / ``process`` targets,
  which become the event-callback roots), and reachability queries.

Resolution is deliberately conservative: an edge is only added when
the callee is identified (self methods through the class and its
in-repo bases, attribute receivers with inferred types, imported
names, local function aliases).  Unresolvable calls get no edge —
clients treat missing edges as "unknown", never as "safe to assume
pure", except where documented (see DESIGN.md §9 known unsoundness).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.linter import FileContext, LintError, iter_python_files

#: scheduling entry points whose second argument is an event callback.
SCHEDULERS = ("schedule_callback", "schedule_callback_at", "schedule_timer")

_FLOW_DISABLE_RE = re.compile(
    r"#\s*simflow:\s*(disable-file|disable)"
    r"\s*(?:=\s*([\w-]+(?:\s*,\s*[\w-]+)*))?"
)


@dataclass
class FunctionInfo:
    """One function, method, nested function, or lambda."""

    qualname: str
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef | Lambda
    ctx: FileContext
    cls: Optional[str] = None  # owning class bare name, if a method
    parent: Optional[str] = None  # qualname of lexically enclosing function
    is_generator: bool = False

    @property
    def args(self) -> ast.arguments:
        return self.node.args

    def param_names(self) -> Set[str]:
        a = self.node.args
        names = {p.arg for p in list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)}
        if a.vararg:
            names.add(a.vararg.arg)
        if a.kwarg:
            names.add(a.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    qualname: str
    name: str
    module: str
    bases: List[str] = field(default_factory=list)  # reference strings
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qualname
    #: attribute name -> class reference string (from ``self.x = Cls(...)``
    #: or ``self.x = param`` with an annotated parameter).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: the class body defines ``__slots__`` (or ``@dataclass(slots=True)``);
    #: whether instances actually lack a ``__dict__`` additionally depends
    #: on every base -- see :meth:`Program.is_slotted`.
    slotted: bool = False


@dataclass(frozen=True)
class CallSite:
    caller: str
    callee: str
    line: int
    col: int
    kind: str  # "call" | "scheduled"


def own_nodes(scope: ast.AST) -> Iterable[ast.AST]:
    """Walk ``scope`` without descending into nested function/class
    defs (the defs themselves are yielded, their bodies are not)."""
    body = scope.body if isinstance(scope.body, list) else [scope.body]
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def assigned_names(scope: ast.AST) -> Set[str]:
    """Names bound by assignment/for/with directly in ``scope``."""
    names: Set[str] = set()
    for node in own_nodes(scope):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets = [node.target]
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            targets = [i.optional_vars for i in node.items if i.optional_vars]
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _annotation_ref(node: Optional[ast.AST]) -> Optional[str]:
    """Render an annotation to a dotted reference string, if simple."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip().strip('"')
    if isinstance(node, (ast.Name, ast.Attribute)):
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on these
            return None
    if isinstance(node, ast.Subscript):  # Optional[X] / List[X] — take X
        return None
    return None


class ModuleIndex:
    """Lexical scoping index of one parsed file."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.module = ctx.module_name or ctx.path
        #: qualname -> FunctionInfo (module funcs, methods, nested, lambdas)
        self.functions: Dict[str, FunctionInfo] = {}
        #: bare class name -> ClassInfo
        self.classes: Dict[str, ClassInfo] = {}
        #: id(ast node) -> FunctionInfo for reverse lookups
        self.by_node: Dict[int, FunctionInfo] = {}
        #: module-level function name -> qualname
        self.module_functions: Dict[str, str] = {}
        #: simflow disable comments (mirrors simlint's in FileContext)
        self.flow_disabled_lines: Dict[int, Set[str]] = {}
        self.flow_disabled_file: Set[str] = set()
        self._scan_flow_disables()
        self._index()

    # -- disable comments -------------------------------------------------
    def _scan_flow_disables(self) -> None:
        for lineno, text in enumerate(self.ctx.lines, start=1):
            if "simflow" not in text:
                continue
            match = _FLOW_DISABLE_RE.search(text)
            if not match:
                continue
            kind, names = match.group(1), match.group(2)
            rules = (
                {n.strip() for n in names.split(",") if n.strip()}
                if names
                else {"*"}
            )
            if kind == "disable-file":
                self.flow_disabled_file |= rules
            else:
                self.flow_disabled_lines.setdefault(lineno, set()).update(rules)

    def is_disabled(self, rule: str, line: int) -> bool:
        if "*" in self.flow_disabled_file or rule in self.flow_disabled_file:
            return True
        on_line = self.flow_disabled_lines.get(line, ())
        return "*" in on_line or rule in on_line

    # -- indexing ---------------------------------------------------------
    def _index(self) -> None:
        self._walk_scope(self.ctx.tree, prefix=self.module, cls=None, parent=None)
        for info in self.classes.values():
            self._infer_attr_types(info)

    def _walk_scope(
        self,
        scope: ast.AST,
        prefix: str,
        cls: Optional[str],
        parent: Optional[str],
    ) -> None:
        body = scope.body if isinstance(scope.body, list) else [scope.body]
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{stmt.name}"
                info = FunctionInfo(
                    qualname=qual,
                    module=self.module,
                    name=stmt.name,
                    node=stmt,
                    ctx=self.ctx,
                    cls=cls,
                    parent=parent,
                    is_generator=any(
                        isinstance(n, (ast.Yield, ast.YieldFrom))
                        for n in own_nodes(stmt)
                    ),
                )
                self.functions[qual] = info
                self.by_node[id(stmt)] = info
                if cls is not None and parent is None:
                    self.classes[cls].methods[stmt.name] = qual
                elif cls is None and parent is None:
                    self.module_functions[stmt.name] = qual
                self._walk_scope(stmt, prefix=qual, cls=None, parent=qual)
                self._collect_lambdas(stmt, qual)
            elif isinstance(stmt, ast.ClassDef) and cls is None and parent is None:
                # Reuse the slots-hot-path rule's detection so the two
                # layers can never disagree about what "slotted" means.
                from repro.analysis.rules.slots_hot_path import _is_slotted

                info = ClassInfo(
                    qualname=f"{prefix}.{stmt.name}",
                    name=stmt.name,
                    module=self.module,
                    bases=[
                        r for r in (_annotation_ref(b) for b in stmt.bases) if r
                    ],
                    slotted=_is_slotted(stmt),
                )
                self.classes[stmt.name] = info
                self._walk_scope(
                    stmt, prefix=info.qualname, cls=stmt.name, parent=None
                )

    def _collect_lambdas(self, fn: ast.AST, prefix: str) -> None:
        for node in own_nodes(fn):
            for child in ast.walk(node):
                if isinstance(child, ast.Lambda) and id(child) not in self.by_node:
                    qual = f"{prefix}.<lambda>L{child.lineno}"
                    info = FunctionInfo(
                        qualname=qual,
                        module=self.module,
                        name="<lambda>",
                        node=child,
                        ctx=self.ctx,
                        parent=prefix,
                    )
                    self.functions[qual] = info
                    self.by_node[id(child)] = info

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        for qual in cls.methods.values():
            fn = self.functions[qual]
            params: Dict[str, str] = {}
            args = fn.node.args
            for p in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                ref = _annotation_ref(p.annotation)
                if ref:
                    params[p.arg] = ref
            for node in own_nodes(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        ref = self._value_type_ref(node.value, params)
                        if ref and target.attr not in cls.attr_types:
                            cls.attr_types[target.attr] = ref

    def _value_type_ref(
        self, value: ast.AST, params: Dict[str, str]
    ) -> Optional[str]:
        """Class reference for an assigned value: ``Cls(...)`` or an
        annotated parameter name."""
        if isinstance(value, ast.Call):
            ref = _annotation_ref(value.func)
            if ref and ref.rsplit(".", 1)[-1][:1].isupper():
                return ref
        if isinstance(value, ast.Name):
            return params.get(value.id)
        return None

    # -- scope helpers ----------------------------------------------------
    def scope_chain(self, fn: FunctionInfo) -> List[FunctionInfo]:
        """The function plus its lexically enclosing functions, inner first."""
        chain = [fn]
        cur = fn
        while cur.parent is not None:
            cur = self.functions[cur.parent]
            chain.append(cur)
        return chain

    def local_names(self, fn: FunctionInfo) -> Set[str]:
        """Assigned locals + parameters of one function scope."""
        return assigned_names(fn.node) | fn.param_names()

    def enclosing_shared_names(self, fn: FunctionInfo) -> Set[str]:
        """Names a nested function/lambda shares with its enclosing
        function scopes (candidates for closure-shared state)."""
        names: Set[str] = set()
        for scope in self.scope_chain(fn):
            names |= self.local_names(scope)
        return names

    def nested_functions(self, fn: FunctionInfo) -> Dict[str, FunctionInfo]:
        body = fn.node.body if isinstance(fn.node.body, list) else []
        return {
            stmt.name: self.by_node[id(stmt)]
            for stmt in body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    # -- reference resolution ---------------------------------------------
    def resolve_callback(
        self, expr: ast.AST, scope: Optional[FunctionInfo]
    ) -> Optional[FunctionInfo]:
        """Resolve a callback reference expression inside ``scope``.

        Handles lambdas, nested functions (through the lexical chain),
        module functions, ``self.method`` (through in-repo base
        classes), and single-assignment local aliases of any of these.
        """
        return self._resolve_ref(expr, scope, seen=set())

    def _resolve_ref(
        self,
        expr: ast.AST,
        scope: Optional[FunctionInfo],
        seen: Set[str],
    ) -> Optional[FunctionInfo]:
        if isinstance(expr, ast.Lambda):
            info = self.by_node.get(id(expr))
            return info
        if isinstance(expr, ast.Name):
            if scope is not None:
                for enclosing in self.scope_chain(scope):
                    nested = self.nested_functions(enclosing)
                    if expr.id in nested:
                        return nested[expr.id]
                alias = self._local_alias(expr.id, scope, seen)
                if alias is not None:
                    return alias
            qual = self.module_functions.get(expr.id)
            if qual is not None:
                return self.functions[qual]
            return None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and scope is not None
            and scope.cls is not None
        ):
            return self.resolve_method(scope.cls, expr.attr)
        return None

    def _local_alias(
        self, name: str, scope: FunctionInfo, seen: Set[str]
    ) -> Optional[FunctionInfo]:
        """``f = self._handler`` / ``f = helper``: follow the alias when
        ``name`` has exactly one plain assignment in ``scope``."""
        if name in seen:
            return None
        seen.add(name)
        sources = [
            node.value
            for node in own_nodes(scope.node)
            if isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == name for t in node.targets
            )
        ]
        if len(sources) != 1:
            return None
        return self._resolve_ref(sources[0], scope, seen)

    def resolve_method(
        self, cls_name: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FunctionInfo]:
        """A method by name on a class or its in-repo base classes
        (in-module only; :class:`Program` extends this across modules)."""
        seen = _seen if _seen is not None else set()
        if cls_name in seen:
            return None
        seen.add(cls_name)
        info = self.classes.get(cls_name)
        if info is None:
            return None
        qual = info.methods.get(method)
        if qual is not None:
            return self.functions[qual]
        for base in info.bases:
            found = self.resolve_method(base.rsplit(".", 1)[-1], method, seen)
            if found is not None:
                return found
        return None


class Program:
    """The whole-repo view: every ModuleIndex plus cross-module edges."""

    def __init__(self, indexes: Sequence[ModuleIndex]):
        self.indexes: List[ModuleIndex] = list(indexes)
        self.by_module: Dict[str, ModuleIndex] = {
            idx.module: idx for idx in self.indexes
        }
        self.functions: Dict[str, FunctionInfo] = {}
        for idx in self.indexes:
            self.functions.update(idx.functions)
        #: bare class name -> [ClassInfo] across modules
        self._classes_by_name: Dict[str, List[ClassInfo]] = {}
        for idx in self.indexes:
            for info in idx.classes.values():
                self._classes_by_name.setdefault(info.name, []).append(info)
        self.edges: List[CallSite] = []
        self.edges_from: Dict[str, List[CallSite]] = {}
        #: qualnames used as scheduled callbacks / generator processes.
        self.callback_roots: Set[str] = set()
        #: root qualname -> scheduling kinds it was registered under
        #: ("callback" | "timer" | "process") -- the event-mix buckets
        #: the simcost profile-guided ranker joins against.
        self.root_kinds: Dict[str, Set[str]] = {}
        self._build_edges()

    # -- construction -----------------------------------------------------
    @classmethod
    def from_paths(cls, paths: Iterable[str]) -> "Program":
        indexes = []
        for path in iter_python_files(paths):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                raise LintError(f"{path}: {exc}") from exc
            indexes.append(ModuleIndex(FileContext(path, source)))
        return cls(indexes)

    def _build_edges(self) -> None:
        for idx in self.indexes:
            for fn in idx.functions.values():
                self._edges_for_function(idx, fn)

    def _edges_for_function(self, idx: ModuleIndex, fn: FunctionInfo) -> None:
        local_types = self._local_types(idx, fn)
        for node in own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve_call(idx, fn, node, local_types)
            if callee is not None:
                self._add_edge(fn, callee, node, "call")
            self._scheduled_targets(idx, fn, node)

    def _add_edge(
        self, fn: FunctionInfo, callee: FunctionInfo, node: ast.AST, kind: str
    ) -> None:
        site = CallSite(
            caller=fn.qualname,
            callee=callee.qualname,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            kind=kind,
        )
        self.edges.append(site)
        self.edges_from.setdefault(fn.qualname, []).append(site)

    def _scheduled_targets(
        self, idx: ModuleIndex, fn: FunctionInfo, node: ast.Call
    ) -> None:
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        target_expr: Optional[ast.AST] = None
        kind = "callback"
        if attr in SCHEDULERS and len(node.args) >= 2:
            target_expr = node.args[1]
            if attr == "schedule_timer":
                kind = "timer"
        elif attr == "process" and node.args:
            gen = node.args[0]
            if isinstance(gen, ast.Call):  # sim.process(self._rx_proc())
                target_expr = gen.func
            else:
                target_expr = gen
            kind = "process"
        if target_expr is None:
            return
        target = idx.resolve_callback(target_expr, fn)
        if target is None and isinstance(target_expr, (ast.Name, ast.Attribute)):
            target = self._resolve_imported(idx, target_expr)
        if target is not None:
            self._add_edge(fn, target, node, "scheduled")
            self.callback_roots.add(target.qualname)
            self.root_kinds.setdefault(target.qualname, set()).add(kind)

    def _local_types(self, idx: ModuleIndex, fn: FunctionInfo) -> Dict[str, str]:
        """name -> class reference for annotated params and
        ``x = ClassName(...)`` locals."""
        types: Dict[str, str] = {}
        if isinstance(fn.node, ast.Lambda):
            return types
        args = fn.node.args
        for p in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            ref = _annotation_ref(p.annotation)
            if ref:
                types[p.arg] = ref
        for node in own_nodes(fn.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                ref = _annotation_ref(node.value.func)
                if ref and ref.rsplit(".", 1)[-1][:1].isupper():
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = ref
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                ref = _annotation_ref(node.annotation)
                if ref:
                    types[node.target.id] = ref
        return types

    def _resolve_call(
        self,
        idx: ModuleIndex,
        fn: FunctionInfo,
        node: ast.Call,
        local_types: Dict[str, str],
    ) -> Optional[FunctionInfo]:
        func = node.func
        # name(...) — nested / module-level / imported / class constructor
        if isinstance(func, ast.Name):
            local = idx.resolve_callback(func, fn)
            if local is not None:
                return local
            ctor = self._constructor(idx, func.id)
            if ctor is not None:
                return ctor
            return self._resolve_imported(idx, func)
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        # self.m(...)
        if isinstance(base, ast.Name) and base.id == "self" and fn.cls is not None:
            found = self._resolve_method_global(idx, fn.cls, func.attr)
            if found is not None:
                return found
        # self.attr.m(...) via inferred attribute types
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and fn.cls is not None
        ):
            cls_info = idx.classes.get(fn.cls)
            if cls_info is not None:
                ref = cls_info.attr_types.get(base.attr)
                if ref is not None:
                    return self._method_of_ref(ref, func.attr)
        # var.m(...) via local annotation / construction
        if isinstance(base, ast.Name) and base.id in local_types:
            return self._method_of_ref(local_types[base.id], func.attr)
        # module.func(...) via imports
        return self._resolve_imported(idx, func)

    def _constructor(self, idx: ModuleIndex, name: str) -> Optional[FunctionInfo]:
        cls_info = idx.classes.get(name)
        if cls_info is None:
            hit = self._unique_class(name)
            if hit is None:
                return None
            cls_info = hit
        init = cls_info.methods.get("__init__")
        if init is not None:
            return self.functions.get(init)
        return None

    def _unique_class(self, bare: str) -> Optional[ClassInfo]:
        hits = self._classes_by_name.get(bare, [])
        return hits[0] if len(hits) == 1 else None

    def _method_of_ref(self, ref: str, method: str) -> Optional[FunctionInfo]:
        bare = ref.rsplit(".", 1)[-1]
        cls_info = self._unique_class(bare)
        if cls_info is None:
            return None
        idx = self.by_module.get(cls_info.module)
        if idx is None:
            return None
        return self._resolve_method_global(idx, cls_info.name, method)

    def _resolve_method_global(
        self, idx: ModuleIndex, cls_name: str, method: str
    ) -> Optional[FunctionInfo]:
        """Like ModuleIndex.resolve_method but follows base classes into
        other modules of the program."""
        found = idx.resolve_method(cls_name, method)
        if found is not None:
            return found
        info = idx.classes.get(cls_name)
        if info is None:
            hit = self._unique_class(cls_name)
            if hit is None:
                return None
            info = hit
            idx2 = self.by_module.get(info.module)
            if idx2 is not None and idx2 is not idx:
                return self._resolve_method_global(idx2, info.name, method)
            return None
        for base in info.bases:
            bare = base.rsplit(".", 1)[-1]
            base_info = self._unique_class(bare)
            if base_info is None:
                continue
            base_idx = self.by_module.get(base_info.module)
            if base_idx is None:
                continue
            found = self._resolve_method_global(base_idx, base_info.name, method)
            if found is not None:
                return found
        return None

    def _resolve_imported(
        self, idx: ModuleIndex, ref: ast.AST
    ) -> Optional[FunctionInfo]:
        """Resolve ``mod.func`` / imported ``func`` across modules."""
        qual = idx.ctx.qualified_name(ref)
        if qual is None:
            return None
        hit = self.functions.get(qual)
        if hit is not None:
            return hit
        # re-exported names: match a unique program function by suffix
        module, _, bare = qual.rpartition(".")
        if not module.startswith("repro"):
            return None
        candidates = [
            f
            for f in self.functions.values()
            if f.name == bare and f.cls is None and f.parent is None
        ]
        return candidates[0] if len(candidates) == 1 else None

    # -- queries ----------------------------------------------------------
    def resolver(self, fn: FunctionInfo):
        """A per-function closure mapping an ``ast.Call`` inside ``fn``
        to its resolved callee (or None) — the same resolution used to
        build the edges, exposed for the flow clients."""
        idx = self.by_module.get(fn.module)
        if idx is None:  # pragma: no cover - fn always comes from an index
            return lambda call: None
        local_types = self._local_types(idx, fn)

        def resolve(call: ast.Call) -> Optional[FunctionInfo]:
            return self._resolve_call(idx, fn, call, local_types)

        return resolve

    def is_disabled(self, finding) -> bool:
        """simflow/simlint disable comments for a Finding-like object."""
        for idx in self.indexes:
            if idx.ctx.path == finding.path:
                if idx.is_disabled(finding.rule, finding.line):
                    return True
                return idx.ctx.is_disabled(finding.rule, finding.line)
        return False

    def index_for_path(self, path: str) -> Optional[ModuleIndex]:
        for idx in self.indexes:
            if idx.ctx.path == path:
                return idx
        return None

    def is_slotted(self, cls_name: str, _seen: Optional[Set[str]] = None) -> Optional[bool]:
        """Whether instances of the (unique) class named ``cls_name``
        have no per-instance ``__dict__``.

        ``True`` requires the class body *and every resolvable base* to
        carry ``__slots__`` -- Python silently adds a ``__dict__`` when
        any class in the MRO lacks slots.  ``False`` means a definition
        was found without slots; ``None`` means unknown (class not in
        the program, ambiguous bare name, or an unresolvable non-trivial
        base such as an external mixin)."""
        seen = _seen if _seen is not None else set()
        bare = cls_name.rsplit(".", 1)[-1]
        if bare in seen:
            return True
        seen.add(bare)
        info = self._unique_class(bare)
        if info is None:
            return None
        if not info.slotted:
            return False
        for base in info.bases:
            base_bare = base.rsplit(".", 1)[-1]
            if base_bare in ("object", "Generic", "Protocol"):
                continue
            base_ok = self.is_slotted(base_bare, seen)
            if base_ok is None and base_bare.endswith(("Error", "Exception", "Warning")):
                continue  # exception hierarchies are never hot-path state
            if base_ok is not True:
                return base_ok
        return True

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Qualnames reachable over call edges from ``roots``."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for site in self.edges_from.get(cur, ()):
                if site.callee not in seen:
                    stack.append(site.callee)
        return seen

    def reachable_from_callbacks(self) -> Set[str]:
        """Everything reachable from an event callback or a simulated
        process — the code whose determinism the engine depends on."""
        return self.reachable_from(self.callback_roots)
