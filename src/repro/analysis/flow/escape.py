"""Cross-shard escape analysis: reach-through of cut-edge proxies.

A :class:`~repro.sim.shard.channel.RemoteStub` stands for an object
owned by *another shard's timeline*; reading state through it is a
schedule-order accident (``CrossShardAccessError`` at runtime).  The
syntactic simlint rule (``cross-shard-state``) catches direct patterns
inside one function; this client runs the same detection on the
program call graph and additionally catches:

* **helper reach-through** — ``self._peer_of(link).queue`` where the
  helper returns ``link.remote_peer``;
* **stored aliases** — ``self._peer = link.remote_peer`` in one
  method, ``self._peer.queue`` in another.

Two entry points:

* :func:`scan_module` — the flow-insensitive per-file scan, shared
  with the migrated simlint rule (identical semantics to the old
  private visitor: direct stub expressions plus same-scope aliases);
* :func:`check_program` — the whole-program pass, reporting
  ``flow-cross-shard`` findings with a witness naming the helper or
  the storing assignment.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.callgraph import FunctionInfo, Program, own_nodes
from repro.analysis.flow.report import Finding

#: attributes that hold a cut-edge proxy (``remote_peers`` via subscript)
STUB_ATTRS = frozenset({"remote_peer", "stub"})
STUB_MAPS = frozenset({"remote_peers"})


def is_stub_expr(node: ast.AST) -> bool:
    """True when ``node`` evaluates to a cut-edge proxy handle."""
    if isinstance(node, ast.Attribute) and node.attr in STUB_ATTRS:
        return True
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Attribute)
        and node.value.attr in STUB_MAPS
    ):
        return True
    return False


# --------------------------------------------------------------------------
# per-file scan (used by the migrated simlint rule)
# --------------------------------------------------------------------------

class _ModuleScanner(ast.NodeVisitor):
    """Direct stub reads plus same-scope aliases — the semantics the
    ``cross-shard-state`` simlint rule has always had."""

    def __init__(self) -> None:
        self.found: List[Tuple[ast.Attribute, str]] = []
        self._aliases: List[Set[str]] = [set()]

    def visit_FunctionDef(self, node) -> None:
        self._aliases.append(set())
        self.generic_visit(node)
        self._aliases.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_stub_expr(node.value):
                    self._aliases[-1].add(target.id)
                else:
                    self._aliases[-1].discard(target.id)

    def _aliased(self, name: str) -> bool:
        return any(name in scope for scope in self._aliases)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)
        value = node.value
        through: Optional[str] = None
        if is_stub_expr(value):
            through = ast.unparse(value)
        elif isinstance(value, ast.Name) and self._aliased(value.id):
            through = value.id
        if through is not None:
            self.found.append((node, through))


def scan_module(tree: ast.AST) -> Iterator[Tuple[ast.Attribute, str]]:
    """Yield ``(attribute node, proxy description)`` reach-through
    sites in one parsed file."""
    scanner = _ModuleScanner()
    scanner.visit(tree)
    yield from scanner.found


# --------------------------------------------------------------------------
# whole-program pass
# --------------------------------------------------------------------------

def _stub_returners(program: Program) -> Dict[str, int]:
    """qualname -> line of functions that return a cut-edge proxy."""
    returners: Dict[str, int] = {}
    for fn in program.functions.values():
        if isinstance(fn.node, ast.Lambda):
            if is_stub_expr(fn.node.body):
                returners[fn.qualname] = fn.node.lineno
            continue
        single = _single_assignments(fn)
        for node in own_nodes(fn.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Name) and value.id in single:
                value = single[value.id]
            if is_stub_expr(value):
                returners[fn.qualname] = node.lineno
                break
    return returners


def _single_assignments(fn: FunctionInfo) -> Dict[str, ast.AST]:
    """name -> value for locals with exactly one plain assignment."""
    counts: Dict[str, int] = {}
    values: Dict[str, ast.AST] = {}
    for node in own_nodes(fn.node):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                counts[target.id] = counts.get(target.id, 0) + 1
                values[target.id] = node.value
    return {n: v for n, v in values.items() if counts[n] == 1}


def _stub_attrs(program: Program) -> Dict[Tuple[str, str], Dict[str, str]]:
    """(module, class) -> {attr -> description of the storing site}
    for ``self.<attr> = <stub expr>`` assignments."""
    stored: Dict[Tuple[str, str], Dict[str, str]] = {}
    for idx in program.indexes:
        for cls in idx.classes.values():
            for qual in cls.methods.values():
                fn = idx.functions[qual]
                for node in own_nodes(fn.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    if not is_stub_expr(node.value):
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            stored.setdefault((idx.module, cls.name), {})[
                                target.attr
                            ] = (
                                f"self.{target.attr} bound to "
                                f"{ast.unparse(node.value)} at line "
                                f"{node.lineno} in {fn.name}()"
                            )
    return stored


def check_program(program: Program) -> List[Finding]:
    returners = _stub_returners(program)
    stored = _stub_attrs(program)
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, int]] = set()

    def flag(
        fn: FunctionInfo, node: ast.Attribute, through: str, witness: Tuple
    ) -> None:
        key = (fn.ctx.path, node.lineno, node.col_offset + 1)
        if key in seen:
            return
        seen.add(key)
        findings.append(
            Finding(
                path=fn.ctx.path,
                line=node.lineno,
                col=node.col_offset + 1,
                rule="flow-cross-shard",
                message=(
                    f"{ast.unparse(node)} reaches through the cut-edge "
                    f"proxy {through}: the object it stands for lives on "
                    "another shard's timeline, so this read is a "
                    "schedule-order accident (CrossShardAccessError at "
                    "runtime) — interact through the shard channel instead"
                ),
                function=fn.qualname,
                witness=witness,
            )
        )

    for fn in program.functions.values():
        if isinstance(fn.node, ast.Lambda):
            continue
        resolve = program.resolver(fn)
        cls_attrs = (
            stored.get((fn.module, fn.cls), {}) if fn.cls is not None else {}
        )

        def stub_source(value: ast.AST) -> Optional[Tuple[str, Tuple]]:
            """(description, witness) when ``value`` is a proxy handle."""
            if is_stub_expr(value):
                return ast.unparse(value), ()
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
                and value.attr in cls_attrs
            ):
                return f"self.{value.attr}", (cls_attrs[value.attr],)
            if isinstance(value, ast.Call):
                callee = resolve(value)
                if callee is not None and callee.qualname in returners:
                    return (
                        ast.unparse(value.func) + "(...)",
                        (
                            f"{callee.name}() returns a cut-edge proxy "
                            f"at line {returners[callee.qualname]} of "
                            f"{callee.module}",
                        ),
                    )
            return None

        aliases: Dict[str, Tuple[str, Tuple]] = {}
        for node in own_nodes(fn.node):
            if isinstance(node, ast.Assign):
                source = stub_source(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if source is not None:
                            desc, wit = source
                            aliases[target.id] = (
                                target.id,
                                wit
                                + (
                                    f"'{target.id}' bound to {desc} at "
                                    f"line {node.lineno}",
                                ),
                            )
                        else:
                            aliases.pop(target.id, None)
        for node in own_nodes(fn.node):
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Attribute):
                    continue
                value = sub.value
                source = stub_source(value)
                if source is not None:
                    desc, wit = source
                    flag(
                        fn,
                        sub,
                        desc,
                        wit + (f"read through {desc} at line {sub.lineno}",),
                    )
                elif isinstance(value, ast.Name) and value.id in aliases:
                    desc, wit = aliases[value.id]
                    flag(
                        fn,
                        sub,
                        desc,
                        wit + (f"read through '{desc}' at line {sub.lineno}",),
                    )
    return findings
