"""simflow: interprocedural typestate + determinism verification.

Where simlint (:mod:`repro.analysis.rules`) inspects one file at a
time with syntactic rules, simflow builds a whole-repo view:

* a module-level **call graph** (:mod:`.callgraph`) with alias-aware
  resolution of ``self`` methods, imported functions, and
  ``schedule_callback`` / ``schedule_timer`` / ``process`` targets;
* per-function **control-flow graphs** (:mod:`.cfg`) with exception
  edges, so error paths are first-class;
* a **worklist dataflow engine** (:mod:`.dataflow`);

and three clients on top:

* **typestate checking** (:mod:`.typestate` / :mod:`.specs`): the
  alloc→write→post→free protocols of the U-Net API (communication
  segment buffers, receive descriptors, endpoints, timer handles),
  proven on *all* paths — including the exception edges the PR-2
  runtime sanitizers only see when a scenario happens to take them;
* **determinism inference** (:mod:`.purity`): a purity lattice
  (sim-pure < seeded-stochastic < nondeterministic) propagated over
  the call graph, making the wall-clock / unseeded-random /
  unordered-iter rules interprocedural;
* **cross-shard escape analysis** (:mod:`.escape`): reach-through of
  cut-edge proxies via helper functions and stored aliases, not just
  direct attribute chains.

Entry point: ``python -m repro.analysis --flow`` (see
:mod:`repro.analysis.cli`), or :func:`analyze_paths` from code.

Escape hatches mirror simlint: ``# simflow: disable=<rule>`` on the
finding line, ``# simflow: disable-file=<rule>`` anywhere in the file,
and the simlint disables for the syntactic determinism rules are
honoured too (a ``# simlint: disable=wall-clock`` site never poisons
the purity lattice).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.analysis.flow.callgraph import Program
from repro.analysis.flow.report import Finding

#: the registered client checks, in report order.
CHECKS = ("typestate", "determinism", "cross-shard")


def analyze_program(
    program: Program, checks: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the selected client checks over an indexed :class:`Program`."""
    from repro.analysis.flow import escape, purity, typestate

    selected = tuple(checks) if checks else CHECKS
    unknown = [c for c in selected if c not in CHECKS]
    if unknown:
        raise KeyError(
            f"unknown flow check(s) {', '.join(unknown)} "
            f"(known: {', '.join(CHECKS)})"
        )
    findings: List[Finding] = []
    if "typestate" in selected:
        findings.extend(typestate.check_program(program))
    if "determinism" in selected:
        findings.extend(purity.check_program(program))
    if "cross-shard" in selected:
        findings.extend(escape.check_program(program))
    findings = [f for f in findings if not program.is_disabled(f)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def analyze_paths(
    paths: Iterable[str], checks: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Index every python file under ``paths`` and run the checks."""
    return analyze_program(Program.from_paths(paths), checks)
