"""Vectorization-candidate detection: the batch engine's work-list.

A scheduled callback/timer body is *batchable* when executing N queued
instances as one fused loop (or as array arithmetic over parallel
attribute columns) cannot be observed: straight-line (branches allowed
-- they mask; loops/try/with/nested defs do not), no allocation other
than small key tuples, no string building, attribute traffic only on
``__slots__`` instances (fixed offsets -> columns), no cross-shard
stub reads (:func:`repro.analysis.flow.escape.is_stub_expr` -- a stub
read makes order across shards observable), and every call either a
known O(1) runtime/queue primitive (:data:`ALLOWED_CALLS`), a
scheduler enqueue, or a stored-sink dispatch (``sink = self._sink;
sink(cell)`` -- the delivery indirection every pipeline stage here
ends with).

These criteria are deliberately conservative: a rejected candidate is
a missed optimisation, an accepted one must never change timelines.

A candidate already wired to a batch kernel (a module-level
``repro.sim.batch.register``/``register_rx_extend`` call --
:func:`registered_batch_qualnames`) moves off the work-list into the
report's ``batched`` set: the work-list only ever shows *remaining*
opportunities, and the ``unbatched-candidate`` simlint rule guards the
registered set against body rot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.analysis.cost.hotpath import HotPath
from repro.analysis.cost.model import CostItem, excluded_ids
from repro.analysis.flow.callgraph import FunctionInfo, Program, own_nodes
from repro.analysis.flow.cfg import NON_RAISING
from repro.analysis.flow.escape import is_stub_expr

#: calls a batchable body may make: the never-raising cost-charging /
#: observability primitives, C-level container ops, the queue fast
#: paths (``try_put``/``try_get`` are append/pop on a slotted Store),
#: and the scheduler enqueues themselves.
ALLOWED_CALLS = frozenset(NON_RAISING) | frozenset(
    {
        "get",
        "count",
        "try_put",
        "try_get",
        "popleft",
        "pop",
        "add",
        "discard",
        "schedule_callback",
        "schedule_callback_at",
        "schedule_timer",
    }
)

#: item classes that keep a body off the candidate list ("alloc" with
#: a tuple-display detail is exempt: key tuples become parallel arrays).
_DISQUALIFYING = frozenset(
    {"alloc", "str-format", "kwargs-call", "gen-resume", "attr-dict"}
)


@dataclass(frozen=True)
class Candidate:
    """One batchable callback body."""

    qualname: str
    path: str
    line: int
    kinds: Tuple[str, ...]
    factor: float  # profile share of its kinds (ranking key)
    note: str

    def to_dict(self) -> dict:
        return {
            "function": self.qualname,
            "path": self.path,
            "line": self.line,
            "kinds": list(self.kinds),
            "factor": round(self.factor, 6),
            "note": self.note,
        }

    def format(self) -> str:
        kinds = "/".join(self.kinds) or "callback"
        return f"  {self.qualname}  ({self.path}:{self.line}, {kinds}) -- {self.note}"


#: the batch-kernel registration entry points (module-level calls).
_BATCH_REGISTER_FNS = frozenset(
    {
        "repro.sim.batch.register",
        "repro.sim.batch.register_rx_extend",
    }
)


def registered_batch_qualnames(program: Program) -> Set[str]:
    """Qualnames of callbacks already wired to a batch kernel.

    Scans every indexed file for ``batch.register(Cls.method, ...)`` /
    ``batch.register_rx_extend(Cls.method)`` calls whose callee
    resolves through the import table to :mod:`repro.sim.batch`.  The
    class is resolved through the same table, so both in-module
    (``Link``) and imported (``NetworkInterface``) registration targets
    map back to their defining module's qualname.
    """
    found: Set[str] = set()
    for idx in program.indexes:
        ctx = idx.ctx
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if ctx.qualified_name(node.func) not in _BATCH_REGISTER_FNS:
                continue
            target = node.args[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
            ):
                continue
            cls_base = ctx.imports.get(target.value.id)
            if cls_base is None:
                cls_base = f"{idx.module}.{target.value.id}"
            found.add(f"{cls_base}.{target.attr}")
    return found


def _stored_sink_names(fn: FunctionInfo) -> Set[str]:
    """Locals single-assigned from a ``self.<attr>`` load: the stored
    delivery callables a candidate body may dispatch through."""
    assigns: dict = {}
    for node in own_nodes(fn.node):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                assigns.setdefault(target.id, []).append(node.value)
    return {
        name
        for name, values in assigns.items()
        if len(values) == 1
        and isinstance(values[0], ast.Attribute)
        and isinstance(values[0].value, ast.Name)
        and values[0].value.id == "self"
    }


def _call_allowed(node: ast.Call, fn: FunctionInfo, sinks: Set[str]) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in ALLOWED_CALLS
    if isinstance(func, ast.Name):
        return func.id in ALLOWED_CALLS or func.id in sinks
    return False


def _reject_reason(
    fn: FunctionInfo, items: List[CostItem]
) -> Optional[str]:
    if fn.is_generator:
        return "generator"
    if fn.name == "<lambda>":
        return "lambda"
    sinks = _stored_sink_names(fn)
    excluded = excluded_ids(fn.node)
    for node in own_nodes(fn.node):
        if id(node) in excluded:
            continue
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            return "loop"
        if isinstance(node, (ast.Try, ast.With, ast.AsyncWith)):
            return "try/with"
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return "nested def"
        if is_stub_expr(node):
            return "cross-shard stub read"
        if isinstance(node, ast.Call) and not _call_allowed(node, fn, sinks):
            return f"opaque call at line {node.lineno}"
    for item in items:
        if item.cls in _DISQUALIFYING:
            if item.cls == "alloc" and item.detail == "tuple display":
                continue
            return f"{item.cls} at line {item.line} ({item.detail})"
    return None


def find_candidates(
    program: Program,
    hot: HotPath,
    items_of: dict,
    factor_of,
) -> List[Candidate]:
    """Scan the callback/timer roots; ``items_of`` maps qualname ->
    classified :class:`CostItem` list, ``factor_of(kinds)`` the
    profile multiplier used for ranking."""
    candidates: List[Candidate] = []
    for qual in sorted(hot.roots):
        kinds = hot.kinds.get(qual, set())
        if not kinds & {"callback", "timer"}:
            continue  # process generators resume, they don't batch
        fn = program.functions.get(qual)
        if fn is None:
            continue
        reason = _reject_reason(fn, items_of.get(qual, []))
        if reason is not None:
            continue
        n_attrs = sum(
            1
            for node in own_nodes(fn.node)
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load)
        )
        candidates.append(
            Candidate(
                qualname=qual,
                path=fn.ctx.path,
                line=getattr(fn.node, "lineno", 0),
                kinds=tuple(sorted(kinds)),
                factor=factor_of(kinds),
                note=(
                    f"straight-line over slotted state "
                    f"({n_attrs} attribute load(s), no allocation, no escape)"
                ),
            )
        )
    candidates.sort(key=lambda c: (-c.factor, c.qualname))
    return candidates
