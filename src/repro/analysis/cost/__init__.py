"""simcost: profile-guided interprocedural hot-path cost analysis.

Pipeline (one :func:`analyze_program` call):

1. :mod:`.hotpath` -- reachability from the event-callback roots, with
   per-function call depth, blame chain, and scheduling kinds;
2. :mod:`.model` -- every reachable function's AST classified into
   weighted cost classes (cold guards and raise paths excluded);
3. :mod:`.profile` + :mod:`.rank` -- static scores joined against the
   measured event mix in ``BENCH_perf.json`` (static-only fallback
   when no profile exists) and ordered by estimated events/s impact;
4. :mod:`.vectorize` -- the batchable-callback work-list for the
   vectorized event-batch engine (ROADMAP).

Findings (for the CI gate) are emitted only for the *actionable* cost
classes by default -- per-iteration allocation, string formatting,
``**kwargs`` expansion, ``try`` inside loops; pass ``--cost-checks``
to also gate the structural ones (``attr-dict``, ``gen-resume``,
``global-loop``, flat ``alloc``), which are always *scored* into the
ranking regardless.  Escape hatches: ``# simcost: disable=<rule>`` on
the finding line, ``# simcost: disable-file=<rule>`` anywhere in the
file, and the shared baseline machinery (``COST_baseline.json``).

Entry point: ``python -m repro.analysis --cost`` (see
:mod:`repro.analysis.cli`), or :func:`analyze_paths` from code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.cost import hotpath as _hotpath
from repro.analysis.cost import profile as _profile
from repro.analysis.cost import rank as _rank
from repro.analysis.cost import vectorize as _vectorize
from repro.analysis.cost.model import CostItem, classify_function
from repro.analysis.cost.profile import EngineProfile
from repro.analysis.cost.rank import FunctionCost
from repro.analysis.cost.vectorize import Candidate
from repro.analysis.flow.callgraph import Program
from repro.analysis.flow.report import Finding

#: gateable cost checks; "alloc-loop" is the per-iteration subset of
#: "alloc" (an allocation whose loop depth is >= 1).
CHECKS = (
    "alloc",
    "alloc-loop",
    "str-format",
    "attr-dict",
    "global-loop",
    "kwargs-call",
    "try-loop",
    "gen-resume",
)

#: checks that produce findings when --cost-checks is not given: the
#: ones a targeted fix removes without restructuring (and that
#: therefore gate CI); the rest rank but do not fail the build.
DEFAULT_CHECKS = ("alloc-loop", "str-format", "kwargs-call", "try-loop")

_COST_DISABLE_RE = re.compile(
    r"#\s*simcost:\s*(disable-file|disable)"
    r"\s*(?:=\s*([\w-]+(?:\s*,\s*[\w-]+)*))?"
)


@dataclass
class CostReport:
    """Everything one simcost run produces."""

    findings: List[Finding] = field(default_factory=list)
    functions: List[FunctionCost] = field(default_factory=list)  # ranked
    candidates: List[Candidate] = field(default_factory=list)  # remaining
    batched: List[Candidate] = field(default_factory=list)  # already wired
    profile: Optional[EngineProfile] = None

    @property
    def profile_source(self) -> Optional[str]:
        return self.profile.source if self.profile is not None else None

    def to_dict(self, top: int = 20) -> dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "count": len(self.findings),
            "profile": self.profile_source or "static-only",
            "functions": [c.to_dict() for c in self.functions[:top]],
            "modules": {
                k: round(v, 3)
                for k, v in _rank.module_rollup(self.functions).items()
            },
            "vectorization_candidates": [c.to_dict() for c in self.candidates],
            "batched_candidates": [c.to_dict() for c in self.batched],
        }


class _DisableScan:
    """Per-file ``# simcost: disable`` comment index."""

    def __init__(self, lines: Sequence[str]):
        self.file_rules: Set[str] = set()
        self.line_rules: Dict[int, Set[str]] = {}
        for lineno, text in enumerate(lines, start=1):
            if "simcost" not in text:
                continue
            match = _COST_DISABLE_RE.search(text)
            if not match:
                continue
            kind, names = match.group(1), match.group(2)
            rules = (
                {n.strip() for n in names.split(",") if n.strip()}
                if names
                else {"*"}
            )
            if kind == "disable-file":
                self.file_rules |= rules
            else:
                self.line_rules.setdefault(lineno, set()).update(rules)

    def is_disabled(self, rule: str, line: int) -> bool:
        if "*" in self.file_rules or rule in self.file_rules:
            return True
        on_line = self.line_rules.get(line, ())
        return "*" in on_line or rule in on_line


def _item_check(item: CostItem) -> Sequence[str]:
    """The check name(s) an item gates under."""
    if item.cls == "alloc":
        return ("alloc", "alloc-loop") if item.loop_depth >= 1 else ("alloc",)
    return (item.cls,)


def _finding(cost: FunctionCost, item: CostItem) -> Finding:
    count = f", x{item.count}" if item.count > 1 else ""
    return Finding(
        path=cost.path,
        line=item.line,
        col=item.col,
        rule=f"cost-{item.cls}",
        message=(
            f"{item.detail} on the event hot path "
            f"(loop depth {item.loop_depth}{count}, static weight {item.weight:g})"
        ),
        function=cost.fn.qualname,
        witness=cost.chain + (f"site classified {item.cls}: {item.detail}",),
    )


def analyze_program(
    program: Program,
    checks: Optional[Sequence[str]] = None,
    profile: Optional[EngineProfile] = None,
    profile_path: Optional[str] = None,
    use_profile: bool = True,
) -> CostReport:
    """Run the full simcost pipeline over an indexed :class:`Program`.

    ``checks`` selects which cost classes produce *findings* (default
    :data:`DEFAULT_CHECKS`); scoring and ranking always cover every
    class.  ``profile`` injects a parsed profile directly (tests);
    otherwise one is loaded from ``profile_path`` or the nearest
    ``BENCH_perf.json``, and ``use_profile=False`` forces the
    documented static-only fallback.
    """
    selected = tuple(checks) if checks else DEFAULT_CHECKS
    unknown = [c for c in selected if c not in CHECKS]
    if unknown:
        raise KeyError(
            f"unknown cost check(s) {', '.join(unknown)} "
            f"(known: {', '.join(CHECKS)})"
        )
    hot = _hotpath.compute(program)
    costs: List[FunctionCost] = []
    items_of: Dict[str, List[CostItem]] = {}
    for qual in sorted(hot.depth):
        fn = program.functions.get(qual)
        if fn is None:
            continue
        items = classify_function(fn, program)
        items_of[qual] = items
        costs.append(
            FunctionCost(
                fn=fn,
                items=items,
                call_depth=hot.depth[qual],
                kinds=set(hot.kinds.get(qual, ())),
                chain=tuple(hot.chain(program, qual)),
            )
        )
    if profile is None and use_profile:
        profile = _profile.load(profile_path)
    if not use_profile:
        profile = None
    _rank.rank(costs, profile)

    scans: Dict[str, _DisableScan] = {}
    findings: List[Finding] = []
    for cost in costs:
        scan = scans.get(cost.path)
        if scan is None:
            scan = scans[cost.path] = _DisableScan(cost.fn.ctx.lines)
        for item in cost.items:
            if not any(c in selected for c in _item_check(item)):
                continue
            rule = f"cost-{item.cls}"
            if scan.is_disabled(rule, item.line):
                continue
            findings.append(_finding(cost, item))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    def factor_of(kinds: Iterable[str]) -> float:
        return profile.factor(kinds) if profile is not None else 1.0

    candidates = _vectorize.find_candidates(program, hot, items_of, factor_of)
    registered = _vectorize.registered_batch_qualnames(program)
    return CostReport(
        findings=findings,
        functions=costs,
        candidates=[c for c in candidates if c.qualname not in registered],
        batched=[c for c in candidates if c.qualname in registered],
        profile=profile,
    )


def analyze_paths(
    paths: Iterable[str],
    checks: Optional[Sequence[str]] = None,
    profile: Optional[EngineProfile] = None,
    profile_path: Optional[str] = None,
    use_profile: bool = True,
) -> CostReport:
    """Index every python file under ``paths`` and run the pipeline."""
    return analyze_program(
        Program.from_paths(paths),
        checks=checks,
        profile=profile,
        profile_path=profile_path,
        use_profile=use_profile,
    )
