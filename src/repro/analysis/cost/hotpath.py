"""Hot-path reachability: which functions run per event, and why.

BFS over the program call graph from the event-callback roots --
``schedule_callback`` / ``schedule_callback_at`` / ``schedule_timer``
targets and ``process`` generators (recorded with their scheduling
kind by :class:`~repro.analysis.flow.callgraph.Program`), plus
callables wired through the repo's sink registrars (``Link.connect``,
``NetworkPort.set_rx_sink``), which are invoked *by* scheduled
deliveries and are therefore just as hot.

Per reached function the pass records the minimum call depth from a
root, the first-discovered parent call site (the **blame chain**
rendered under each finding: root -> ... -> offending function), and
the union of scheduling kinds that can reach it -- the key the
profile-guided ranker joins against the measured event mix.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.analysis.flow.callgraph import CallSite, Program, own_nodes

#: methods whose callable arguments become event-delivery sinks.
SINK_REGISTRARS = frozenset({"connect", "set_rx_sink"})

#: scheduler methods (mirrors callgraph.SCHEDULERS + their kinds).
_SCHEDULER_KINDS = {
    "schedule_callback": "callback",
    "schedule_callback_at": "callback",
    "schedule_timer": "timer",
}


@dataclass
class HotPath:
    """Result of the reachability pass."""

    roots: Set[str] = field(default_factory=set)
    #: qualname -> minimum #call edges from a root (0 = is a root)
    depth: Dict[str, int] = field(default_factory=dict)
    #: qualname -> the call site that first reached it (absent for roots)
    parent: Dict[str, CallSite] = field(default_factory=dict)
    #: qualname -> scheduling kinds that reach it
    #: ("callback" | "timer" | "process")
    kinds: Dict[str, Set[str]] = field(default_factory=dict)

    def is_hot(self, qualname: str) -> bool:
        return qualname in self.depth

    def chain(self, program: Program, qualname: str) -> List[str]:
        """The blame chain root -> ... -> ``qualname``, rendered as
        witness steps (one per edge, plus the root registration)."""
        edges: List[CallSite] = []
        cur = qualname
        seen = {cur}
        while cur in self.parent:
            site = self.parent[cur]
            edges.append(site)
            cur = site.caller
            if cur in seen:  # defensive: cycles cannot appear in a BFS tree
                break
            seen.add(cur)
        steps = [f"{cur} is an event-callback root ({'/'.join(sorted(self.kinds.get(cur, ()))) or 'callback'})"]
        for site in reversed(edges):
            caller_fn = program.functions.get(site.caller)
            path = caller_fn.ctx.path if caller_fn is not None else "?"
            verb = "schedules" if site.kind == "scheduled" else "calls"
            steps.append(f"{site.caller} {verb} {site.callee} at {path}:{site.line}")
        return steps


def _registrar_roots(program: Program) -> Dict[str, Set[str]]:
    """Callables passed to sink registrars, resolved where possible."""
    found: Dict[str, Set[str]] = {}
    for idx in program.indexes:
        for fn in idx.functions.values():
            for node in own_nodes(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                attr = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else ""
                )
                if attr not in SINK_REGISTRARS:
                    continue
                candidates = list(node.args) + [
                    kw.value for kw in node.keywords if kw.arg is not None
                ]
                for arg in candidates:
                    target = idx.resolve_callback(arg, fn)
                    if target is not None:
                        found.setdefault(target.qualname, set()).add("callback")
    return found


def _aliased_scheduler_roots(program: Program) -> Dict[str, Set[str]]:
    """Targets scheduled through a cached bound method -- the hot loops
    here hoist ``schedule_at = self.sim.schedule_callback_at`` out of
    the loop, which hides the call from the callgraph's scheduler
    detection.  Resolve the alias (single assignment from a
    ``.schedule_*`` attribute load) and record ``args[1]`` targets."""
    found: Dict[str, Set[str]] = {}
    for idx in program.indexes:
        for fn in idx.functions.values():
            aliases: Dict[str, str] = {}
            for node in own_nodes(fn.node):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Attribute):
                    kind = _SCHEDULER_KINDS.get(node.value.attr)
                    if kind is None:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            aliases[target.id] = kind
            if not aliases:
                continue
            for node in own_nodes(fn.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in aliases
                    and len(node.args) >= 2
                ):
                    target = idx.resolve_callback(node.args[1], fn)
                    if target is not None:
                        found.setdefault(target.qualname, set()).add(
                            aliases[node.func.id]
                        )
    return found


def compute(program: Program) -> HotPath:
    hot = HotPath()
    kind_seeds: Dict[str, Set[str]] = {
        qual: set(kinds) for qual, kinds in program.root_kinds.items()
    }
    for qual in program.callback_roots:
        kind_seeds.setdefault(qual, {"callback"})
    for qual, kinds in _registrar_roots(program).items():
        kind_seeds.setdefault(qual, set()).update(kinds)
    for qual, kinds in _aliased_scheduler_roots(program).items():
        kind_seeds.setdefault(qual, set()).update(kinds)
    hot.roots = {q for q in kind_seeds if q in program.functions}

    # BFS for minimum depth + first-parent blame tree (deterministic:
    # roots in sorted order, edges in recorded order).
    queue = deque(sorted(hot.roots))
    for root in queue:
        hot.depth[root] = 0
    while queue:
        cur = queue.popleft()
        for site in program.edges_from.get(cur, ()):
            if site.callee not in hot.depth:
                hot.depth[site.callee] = hot.depth[cur] + 1
                hot.parent[site.callee] = site
                queue.append(site.callee)

    # Kind propagation to fixpoint (a shared helper reached from both a
    # timer and a callback root carries both kinds).
    hot.kinds = {q: set(kind_seeds.get(q, ())) for q in hot.depth}
    changed = True
    while changed:
        changed = False
        for site in program.edges:
            if site.caller in hot.kinds and site.callee in hot.kinds:
                missing = hot.kinds[site.caller] - hot.kinds[site.callee]
                if missing:
                    hot.kinds[site.callee] |= missing
                    changed = True
    return hot
