"""Roll-ups and the profile-guided ranking.

``score(f)   = sum over classified sites of class_weight * 8**loop_depth``
``factor(f)  = profile share of f's scheduling kinds (1.0 static-only)``
``weighted(f)= score(f) * factor(f)``

Functions are ordered by ``weighted`` descending -- the estimated
events/s impact order the satellite-fix workflow consumes.  Module
roll-ups sum their functions' weighted scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cost.model import CostItem
from repro.analysis.cost.profile import EngineProfile
from repro.analysis.flow.callgraph import FunctionInfo


@dataclass
class FunctionCost:
    """Static cost roll-up of one hot-path function."""

    fn: FunctionInfo
    items: List[CostItem]
    call_depth: int
    kinds: Set[str] = field(default_factory=set)
    chain: Tuple[str, ...] = ()
    factor: float = 1.0

    @property
    def score(self) -> float:
        return sum(item.weight for item in self.items)

    @property
    def weighted(self) -> float:
        return self.score * self.factor

    @property
    def path(self) -> str:
        return self.fn.ctx.path

    @property
    def line(self) -> int:
        return getattr(self.fn.node, "lineno", 0)

    def by_class(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for item in self.items:
            out[item.cls] = out.get(item.cls, 0.0) + item.weight
        return out

    def to_dict(self) -> dict:
        return {
            "function": self.fn.qualname,
            "path": self.path,
            "line": self.line,
            "call_depth": self.call_depth,
            "kinds": sorted(self.kinds),
            "score": round(self.score, 3),
            "factor": round(self.factor, 6),
            "weighted": round(self.weighted, 3),
            "by_class": {k: round(v, 3) for k, v in sorted(self.by_class().items())},
            "chain": list(self.chain),
            "sites": len(self.items),
        }


def rank(
    costs: List[FunctionCost], profile: Optional[EngineProfile]
) -> List[FunctionCost]:
    """Apply the event-mix factor and sort by estimated impact."""
    for cost in costs:
        cost.factor = profile.factor(cost.kinds) if profile is not None else 1.0
    costs.sort(key=lambda c: (-c.weighted, -c.score, c.fn.qualname))
    return costs


def module_rollup(costs: List[FunctionCost]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for cost in costs:
        out[cost.fn.module] = out.get(cost.fn.module, 0.0) + cost.weighted
    return dict(sorted(out.items(), key=lambda kv: -kv[1]))


def render_ranking(costs: List[FunctionCost], top: int) -> str:
    """The text-mode "hottest functions" table."""
    lines = [f"simcost: top {min(top, len(costs))} hot-path functions by weighted score:"]
    for cost in costs[:top]:
        kinds = "/".join(sorted(cost.kinds)) or "?"
        lines.append(
            f"  {cost.weighted:10.1f}  {cost.fn.qualname}  "
            f"({cost.path}:{cost.line}, score {cost.score:.1f} x factor "
            f"{cost.factor:.3f}, depth {cost.call_depth}, {kinds})"
        )
    return "\n".join(lines)
