"""The static cost model: AST nodes -> weighted cost classes.

Each cost class approximates one interpreter overhead the vectorized
batch engine could amortize (or that a targeted fix removes outright):

========== ======  =================================================
class      weight  what it charges
========== ======  =================================================
alloc        10    list/dict/set displays, comprehensions, container
                   builtin calls (``list()``, ``dict()``, ...); tuple
                   displays with non-constant elements charge 3
                   (two-element tuples hit the free list); in-repo
                   constructor calls and closure/lambda creation
                   charge 12 (``__init__`` frame + object header)
str-format    8    f-strings, ``%`` on a string literal, literal
                   ``.format(...)``, string concatenation
gen-resume    6    ``yield`` / ``yield from`` sites (frame save +
                   restore per event the generator awaits)
kwargs-call   4    ``**kwargs`` / ``*args`` call expansion (dict/tuple
                   built per call)
try-loop      3    ``try`` blocks entered once per loop iteration
attr-dict     2    attribute access on instances of in-repo classes
                   known to carry a per-instance ``__dict__``
global-loop   1    global/builtin name lookups inside loops
========== ======  =================================================

Every site's effective weight is ``class_weight * 8**loop_depth``
(``loop_depths`` from :mod:`repro.analysis.flow.cfg`): a loop body is
assumed to run ~8x per entry, nested loops compound.  Sites on cold
paths are excluded entirely: ``raise`` statements and ``assert``
messages (error paths), and statements guarded by the repo's
observability/sanitizer idiom (``if _o is not None:``,
``if _engine.access_hook is not None:`` ...), which are no-ops in
production runs.  See DESIGN.md §10 for the soundness discussion.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.flow.callgraph import FunctionInfo, Program, own_nodes
from repro.analysis.flow.cfg import loop_depths

#: per-class base weights (relative interpreter cost, not nanoseconds).
WEIGHTS: Dict[str, float] = {
    "alloc": 10.0,
    "str-format": 8.0,
    "gen-resume": 6.0,
    "kwargs-call": 4.0,
    "try-loop": 3.0,
    "attr-dict": 2.0,
    "global-loop": 1.0,
}

#: alloc sub-weights (see the table above).
TUPLE_WEIGHT = 3.0
CTOR_WEIGHT = 12.0

#: assumed iterations per loop entry; nesting compounds exponentially.
LOOP_BASE = 8.0

#: container builtins whose call allocates.
_CONTAINER_BUILTINS = frozenset(
    {"list", "dict", "set", "tuple", "frozenset", "bytearray", "bytes"}
)

#: cold-guard detection: ``if <name> is not None:`` / ``if <name>:``
#: where the name/attribute is one of the repo's instrumentation
#: handles.  Statements under such guards cost nothing when profiling
#: and sanitizers are off (the production configuration).
COLD_GUARD_NAMES = frozenset({"_o", "_sp", "_mon", "_obs", "_hook", "_tr"})
COLD_GUARD_ATTRS = frozenset({"access_hook", "active", "trace_hook"})

#: names that never charge a global-loop lookup.
_FREE_NAMES = frozenset({"self", "True", "False", "None", "cls"})


@dataclass(frozen=True)
class CostItem:
    """One classified site inside a function."""

    cls: str
    line: int
    col: int
    loop_depth: int
    weight: float  # class weight * LOOP_BASE**loop_depth (* count)
    detail: str
    count: int = 1


def _is_cold_test(test: ast.AST) -> bool:
    target: Optional[ast.AST] = None
    if (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        target = test.left
    elif isinstance(test, (ast.Name, ast.Attribute)):
        target = test
    if isinstance(target, ast.Name):
        return target.id in COLD_GUARD_NAMES
    if isinstance(target, ast.Attribute):
        return target.attr in COLD_GUARD_ATTRS
    return False


def excluded_ids(scope: ast.AST) -> Set[int]:
    """ids of every node on a cold path of ``scope``: bodies of cold
    guards, ``raise`` statements, and ``assert`` failure messages."""
    excluded: Set[int] = set()

    def mark(node: ast.AST) -> None:
        excluded.add(id(node))
        for child in ast.iter_child_nodes(node):
            mark(child)

    def visit(node: ast.AST) -> None:
        if isinstance(node, ast.Raise):
            mark(node)
            return
        if isinstance(node, ast.Assert):
            if node.msg is not None:
                mark(node.msg)
            visit(node.test)
            return
        if isinstance(node, ast.If) and _is_cold_test(node.test):
            for stmt in node.body:
                mark(stmt)
            for stmt in node.orelse:
                visit(stmt)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)):
            return  # nested scopes are classified on their own
        for child in ast.iter_child_nodes(node):
            visit(child)

    body = scope.body if isinstance(scope.body, list) else [scope.body]
    for stmt in body:
        visit(stmt)
    return excluded


def _call_name(func: ast.AST) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _item(
    cls: str, node: ast.AST, depth: int, detail: str, base: Optional[float] = None
) -> CostItem:
    weight = (WEIGHTS[cls] if base is None else base) * LOOP_BASE**depth
    return CostItem(
        cls=cls,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", -1) + 1,
        loop_depth=depth,
        weight=weight,
        detail=detail,
    )


class _Classifier:
    def __init__(self, fn: FunctionInfo, program: Program):
        self.fn = fn
        self.program = program
        self.idx = program.by_module.get(fn.module)
        self.resolve = program.resolver(fn)
        self.depths = loop_depths(fn.node)
        self.excluded = excluded_ids(fn.node)
        self.items: List[CostItem] = []
        #: f-string format specs parse as nested JoinedStr -- count
        #: only the outermost one.
        self._inner_joined: Set[int] = set()
        #: (name) -> [depths] for global-loop aggregation
        self._global_lookups: Dict[str, List[int]] = {}
        self._global_first: Dict[str, ast.Name] = {}
        #: class name -> [(node, depth)] for attr-dict aggregation
        self._dict_attrs: Dict[str, List[int]] = {}
        self._dict_first: Dict[str, ast.Attribute] = {}
        if self.idx is not None and not isinstance(fn.node, ast.Lambda):
            self._locals = self.idx.local_names(fn)
            self._locals |= set(self.idx.nested_functions(fn))
        else:
            self._locals = set()
        self._local_types = program._local_types(self.idx, fn) if self.idx else {}

    def run(self) -> List[CostItem]:
        for node in own_nodes(self.fn.node):
            if id(node) in self.excluded:
                continue
            self._classify(node)
        self._flush_aggregates()
        return self.items

    # -- per-node classification ---------------------------------------
    def _depth(self, node: ast.AST) -> int:
        return self.depths.get(id(node), 0)

    def _classify(self, node: ast.AST) -> None:
        depth = self._depth(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            name = getattr(node, "name", "<lambda>")
            self.items.append(
                _item("alloc", node, depth, f"closure allocation ({name})", CTOR_WEIGHT)
            )
        elif isinstance(node, ast.ListComp):
            self.items.append(_item("alloc", node, depth, "list comprehension"))
        elif isinstance(node, ast.SetComp):
            self.items.append(_item("alloc", node, depth, "set comprehension"))
        elif isinstance(node, ast.DictComp):
            self.items.append(_item("alloc", node, depth, "dict comprehension"))
        elif isinstance(node, ast.GeneratorExp):
            self.items.append(_item("alloc", node, depth, "generator expression"))
        elif isinstance(node, ast.List) and isinstance(node.ctx, ast.Load):
            self.items.append(_item("alloc", node, depth, "list display"))
        elif isinstance(node, ast.Set):
            self.items.append(_item("alloc", node, depth, "set display"))
        elif isinstance(node, ast.Dict):
            self.items.append(_item("alloc", node, depth, "dict display"))
        elif isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
            if any(not isinstance(e, ast.Constant) for e in node.elts):
                self.items.append(
                    _item("alloc", node, depth, "tuple display", TUPLE_WEIGHT)
                )
        elif isinstance(node, ast.Call):
            self._classify_call(node, depth)
        elif isinstance(node, ast.JoinedStr):
            if id(node) not in self._inner_joined:
                for sub in ast.walk(node):
                    if isinstance(sub, ast.JoinedStr) and sub is not node:
                        self._inner_joined.add(id(sub))
                self.items.append(_item("str-format", node, depth, "f-string"))
        elif isinstance(node, ast.BinOp):
            self._classify_binop(node, depth)
        elif isinstance(node, ast.Attribute):
            self._classify_attribute(node, depth)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            self._classify_name(node, depth)
        elif isinstance(node, ast.Try):
            if depth >= 1:
                self.items.append(
                    _item("try-loop", node, depth, "try/except setup inside loop")
                )
        elif isinstance(node, (ast.Yield, ast.YieldFrom)):
            self.items.append(
                _item("gen-resume", node, depth, "generator resume point")
            )

    def _classify_call(self, node: ast.Call, depth: int) -> None:
        if any(isinstance(a, ast.Starred) for a in node.args):
            self.items.append(
                _item("kwargs-call", node, depth, "*args call expansion")
            )
        if any(kw.arg is None for kw in node.keywords):
            self.items.append(
                _item("kwargs-call", node, depth, "**kwargs call expansion")
            )
        name = _call_name(node.func)
        if isinstance(node.func, ast.Name) and name in _CONTAINER_BUILTINS:
            self.items.append(_item("alloc", node, depth, f"{name}() call"))
            return
        if (
            name == "format"
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Constant)
            and isinstance(node.func.value.value, str)
        ):
            self.items.append(_item("str-format", node, depth, "str.format() call"))
            return
        # in-repo constructor: a capitalized Name matching a unique
        # program class (covers dataclasses, whose generated __init__
        # never appears in the AST), or a call resolving to __init__.
        if isinstance(node.func, ast.Name) and name[:1].isupper():
            if self.program._unique_class(name) is not None:
                self.items.append(
                    _item("alloc", node, depth, f"{name}(...) allocation", CTOR_WEIGHT)
                )
                return
        callee = self.resolve(node)
        if callee is not None and callee.name == "__init__":
            self.items.append(
                _item(
                    "alloc",
                    node,
                    depth,
                    f"{callee.cls or name}(...) allocation",
                    CTOR_WEIGHT,
                )
            )

    def _classify_binop(self, node: ast.BinOp, depth: int) -> None:
        def is_str(side: ast.AST) -> bool:
            return isinstance(side, ast.JoinedStr) or (
                isinstance(side, ast.Constant) and isinstance(side.value, str)
            )

        if isinstance(node.op, ast.Mod) and is_str(node.left):
            self.items.append(_item("str-format", node, depth, "%-format on string"))
        elif isinstance(node.op, ast.Add) and (is_str(node.left) or is_str(node.right)):
            self.items.append(_item("str-format", node, depth, "string concatenation"))

    def _classify_attribute(self, node: ast.Attribute, depth: int) -> None:
        cls_name = self._receiver_class(node.value)
        if cls_name is None:
            return
        if self.program.is_slotted(cls_name) is False:
            self._dict_attrs.setdefault(cls_name, []).append(depth)
            self._dict_first.setdefault(cls_name, node)

    def _receiver_class(self, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Name):
            if value.id == "self":
                return self.fn.cls
            ref = self._local_types.get(value.id)
            return ref.rsplit(".", 1)[-1] if ref else None
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and self.fn.cls is not None
            and self.idx is not None
        ):
            cls_info = self.idx.classes.get(self.fn.cls)
            if cls_info is not None:
                ref = cls_info.attr_types.get(value.attr)
                return ref.rsplit(".", 1)[-1] if ref else None
        return None

    def _classify_name(self, node: ast.Name, depth: int) -> None:
        if depth < 1 or node.id in _FREE_NAMES or node.id in self._locals:
            return
        self._global_lookups.setdefault(node.id, []).append(depth)
        self._global_first.setdefault(node.id, node)

    # -- aggregation ----------------------------------------------------
    def _flush_aggregates(self) -> None:
        for name, depths in sorted(self._global_lookups.items()):
            node = self._global_first[name]
            weight = sum(WEIGHTS["global-loop"] * LOOP_BASE**d for d in depths)
            self.items.append(
                CostItem(
                    cls="global-loop",
                    line=node.lineno,
                    col=node.col_offset + 1,
                    loop_depth=min(depths),
                    weight=weight,
                    detail=f"global/builtin lookup of {name!r} inside loop",
                    count=len(depths),
                )
            )
        for cls_name, depths in sorted(self._dict_attrs.items()):
            node = self._dict_first[cls_name]
            weight = sum(WEIGHTS["attr-dict"] * LOOP_BASE**d for d in depths)
            self.items.append(
                CostItem(
                    cls="attr-dict",
                    line=node.lineno,
                    col=node.col_offset + 1,
                    loop_depth=min(depths),
                    weight=weight,
                    detail=(
                        f"attribute access on non-__slots__ class {cls_name} "
                        f"(per-instance __dict__ lookup)"
                    ),
                    count=len(depths),
                )
            )


def classify_function(fn: FunctionInfo, program: Program) -> List[CostItem]:
    """Classify every chargeable site of one function (cold paths
    excluded), sorted by position."""
    items = _Classifier(fn, program).run()
    items.sort(key=lambda i: (i.line, i.col, i.cls))
    return items
