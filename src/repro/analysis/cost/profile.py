"""The dynamic side of the ranker: the measured engine event mix.

``BENCH_perf.json`` (committed at the repo root, refreshed by
``benchmarks/bench_perf.py``) carries an ``obs.engine_profile``
section: executed callback/event counts and wall seconds by entry
kind.  A function reachable only from timer roots in a profile where
timers never fire ranks below an equally expensive callback helper --
that is the whole point of profile-guided ordering.

When no report exists (fresh checkout, CI without artifacts) ranking
falls back to the static score alone: ``factor = 1.0`` for every
function, documented in DESIGN.md §10.  A missing profile is never an
error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.bench.profile import load_engine_profile

#: scheduling kind (callgraph) -> engine_profile wall/count bucket.
#: A ``process`` target runs when the event it awaits fires, so it
#: bills to the "event" bucket.
KIND_TO_BUCKET = {"callback": "callback", "timer": "timer", "process": "event"}


@dataclass(frozen=True)
class EngineProfile:
    """Parsed ``obs.engine_profile`` section."""

    counts: Dict[str, float]  # bucket -> executed entries
    wall_s: Dict[str, float]  # bucket -> wall seconds
    source: str

    @property
    def shares(self) -> Dict[str, float]:
        """bucket -> fraction of profiled time; wall-based when the
        per-kind wall split is non-degenerate, count-based otherwise."""
        total_wall = sum(self.wall_s.values())
        if total_wall > 0:
            return {k: v / total_wall for k, v in self.wall_s.items()}
        total_count = sum(self.counts.values())
        if total_count > 0:
            return {k: v / total_count for k, v in self.counts.items()}
        return {}

    def factor(self, kinds: Iterable[str]) -> float:
        """Event-mix multiplier for a function reachable under
        ``kinds``: the summed profile share of its buckets.  Unknown or
        empty kind sets get 1.0 (never silently zero out a function we
        cannot attribute)."""
        buckets = {KIND_TO_BUCKET.get(k) for k in kinds} - {None}
        if not buckets:
            return 1.0
        shares = self.shares
        if not shares:
            return 1.0
        return sum(shares.get(b, 0.0) for b in buckets)

    def events_per_sec(self) -> Optional[float]:
        total_wall = sum(self.wall_s.values())
        total = sum(self.counts.values())
        if total_wall > 0 and total > 0:
            return total / total_wall
        return None


def from_section(section: Mapping, source: str) -> EngineProfile:
    wall = dict(section.get("wall_s_by_kind", {}))
    counts = {
        "callback": float(section.get("executed_callbacks", 0)),
        "event": float(section.get("executed_events", 0)),
        "timer": float(section.get("executed_timers", 0)),
    }
    return EngineProfile(
        counts=counts,
        wall_s={k: float(v) for k, v in wall.items()},
        source=source,
    )


def load(path: Optional[str] = None) -> Optional[EngineProfile]:
    """The profile from ``path`` or the nearest ``BENCH_perf.json``;
    ``None`` (static-only fallback) when absent or older-schema."""
    loaded = load_engine_profile(path)
    if loaded is None:
        return None
    section, source = loaded
    return from_section(section, source)
