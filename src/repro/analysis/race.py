"""Schedule-order race detection: the ShadowScheduler engine hook.

Every result in this repository is produced by ordering software
overheads on one shared simulated-time axis, and the engine resolves
same-timestamp events purely by insertion sequence (a monotonic
sequence number breaks heap ties).  Any outcome that silently depends
on that FIFO tie order is a latent reproduction bug: the "race" is not
between OS threads but between *heap entries scheduled for the same
instant* whose relative order the model never pinned down.

This module provides the dynamic half of the detector:

* :class:`RaceTracker` -- the ShadowScheduler.  Installed through
  :func:`repro.sim.engine.set_instrumentation`, it tags every heap
  entry with a globally unique id, the schedule site (the model source
  line that scheduled it), and the entry that scheduled it (the
  *schedule edge*).  State objects (communication segments, descriptor
  rings, resources, links, buffer pools) report reads/writes through
  ``engine.access_hook`` so each access is attributed to the executing
  entry.
* A happens-before relation built from two edge kinds: **time edges**
  (t1 < t2 orders everything) and **schedule edges** (A scheduled B, so
  A executed before B even at the same timestamp, transitively).  Two
  same-timestamp entries that both touch one state object, at least one
  writing, with *no* schedule path between them, are flagged as a
  **simulation race** -- their relative order is an accident of
  insertion sequence.
* Tie-break perturbation: the tracker also owns the heap tie key, so a
  run can be replayed under ``lifo`` or seeded-``random`` same-timestamp
  order instead of ``fifo``.  :mod:`repro.analysis.perturb` uses this to
  classify flagged races as CONFIRMED (results diverge) or BENIGN (the
  events commute).

Zero overhead when off: unmonitored simulators carry ``_mon = None``
and state objects see ``engine.access_hook is None``; nothing else is
paid.  Arm with ``REPRO_RACE=1`` in the environment (takes effect when
:mod:`repro.analysis` is imported, which every data-path module does)
or the :func:`detected` context manager.

Memory stays bounded by analyzing each timestamp group eagerly: when
the clock advances, the group's conflicting access pairs are turned
into findings and the per-entry metadata is dropped.  Only the pending
(scheduled, not yet executed) entries and the execution trace survive.
"""

from __future__ import annotations

import random
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

#: Recognised same-timestamp tie-break orders.
TIE_ORDERS = ("fifo", "lifo", "random")

#: Findings kept per run (dedup happens first; this is a hard cap).
MAX_FINDINGS = 200
#: Pairwise comparisons per (timestamp, state) group; beyond this the
#: group is truncated (and the truncation is counted, never silent).
MAX_PAIRS_PER_STATE = 400


def _site_of(depth: int = 2, frames: int = 2) -> Tuple[Tuple[str, int, str], ...]:
    """The first ``frames`` non-engine stack frames above ``depth``."""
    try:
        frame = sys._getframe(depth)
    except ValueError:  # pragma: no cover - shallow stack
        return ()
    found: List[Tuple[str, int, str]] = []
    while frame is not None and len(found) < frames:
        code = frame.f_code
        if not code.co_filename.endswith("engine.py"):
            found.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back
    return tuple(found)


def format_site(site: Tuple[Tuple[str, int, str], ...]) -> str:
    if not site:
        return "<setup>"
    return " <- ".join(f"{path}:{line} in {func}" for path, line, func in site)


def _label_of(target: Any) -> str:
    """Human-stable label for a heap entry's payload (callback or event)."""
    qualname = getattr(target, "__qualname__", None)
    if qualname is not None:  # a bare scheduled callback
        return f"cb:{qualname}"
    name = getattr(target, "name", "")
    kind = type(target).__name__
    return f"ev:{kind}:{name}" if name else f"ev:{kind}"


@dataclass(frozen=True)
class RaceFinding:
    """One unordered same-timestamp conflicting pair (deduplicated by
    state label and the two schedule sites; ``count`` is how many times
    the same pair shape occurred)."""

    when: float
    state: str
    a_label: str
    a_site: Tuple[Tuple[str, int, str], ...]
    a_mode: str
    b_label: str
    b_site: Tuple[Tuple[str, int, str], ...]
    b_mode: str
    count: int = 1

    def key(self) -> tuple:
        return (self.state, self.a_label, self.a_site, self.b_label, self.b_site)

    def format(self) -> str:
        return (
            f"simulation race on {self.state!r} at t={self.when:.3f}us "
            f"(x{self.count}):\n"
            f"  [{self.a_mode}] {self.a_label}\n"
            f"      scheduled at {format_site(self.a_site)}\n"
            f"  [{self.b_mode}] {self.b_label}\n"
            f"      scheduled at {format_site(self.b_site)}\n"
            f"  no schedule edge orders these same-timestamp events; their "
            f"relative order is an insertion-sequence accident"
        )


@dataclass
class RaceReport:
    """Aggregated result of one monitored run."""

    tie: str
    seed: Optional[int]
    entries: int
    accesses: int
    findings: List[RaceFinding]
    truncated_pairs: int

    def summary(self) -> str:
        status = (
            f"{len(self.findings)} potential race(s)"
            if self.findings
            else "no races"
        )
        extra = (
            f"; {self.truncated_pairs} pair comparison(s) truncated"
            if self.truncated_pairs
            else ""
        )
        return (
            f"race-detect [{self.tie}]: {status} over {self.entries} heap "
            f"entries, {self.accesses} state accesses{extra}"
        )

    def format(self) -> str:
        lines = [self.summary()]
        for finding in self.findings:
            lines.append("")
            lines.append(finding.format())
        return "\n".join(lines)


class RaceTracker:
    """The ShadowScheduler: schedule-edge recorder, access attributor,
    happens-before race checker, and same-timestamp tie perturber.

    One tracker is shared by every :class:`~repro.sim.engine.Simulator`
    created while it is installed; ids are globally unique so multiple
    sequential simulations in one scenario coexist.
    """

    def __init__(self, tie: str = "fifo", seed: Optional[int] = None):
        if tie not in TIE_ORDERS:
            raise ValueError(f"unknown tie-break order {tie!r} (known: {TIE_ORDERS})")
        self.tie = tie
        self.seed = seed
        self._rng = random.Random(0 if seed is None else seed)
        self._next_id = 0
        #: eid -> (when, parent_eid, label, site) for entries scheduled
        #: but not yet executed (bounded by the heap size).
        self._pending: Dict[int, Tuple[float, Optional[int], str, tuple]] = {}
        #: currently executing entry id (None outside the event loop).
        self._current: Optional[int] = None
        #: timestamp of the group being accumulated.
        self._group_when: Optional[float] = None
        #: eid -> (parent, label, site) for entries executed at
        #: ``_group_when`` (flushed when the clock moves).
        self._group_meta: Dict[int, Tuple[Optional[int], str, tuple]] = {}
        #: (state label, state id) -> {eid: "r"|"w"} for the live group.
        self._group_access: Dict[Tuple[str, int], Dict[int, str]] = {}
        #: full execution trace: (when, label) per executed entry.
        self.trace: List[Tuple[float, str]] = []
        self._findings: Dict[tuple, RaceFinding] = {}
        self.entries_seen = 0
        self.accesses_seen = 0
        self.truncated_pairs = 0

    # -- engine monitor interface ---------------------------------------
    def on_schedule(self, seq: int, when: float, target: Any) -> Any:
        """Register a new heap entry; returns its (possibly perturbed)
        tie-break key.  ``seq`` is the simulator-local sequence number,
        unused: the tracker's global id keeps multiple simulators'
        entries distinct while preserving per-simulator FIFO order."""
        self._next_id += 1
        eid = self._next_id
        self.entries_seen += 1
        self._pending[eid] = (when, self._current, _label_of(target), _site_of(2))
        if self.tie == "fifo":
            return eid
        if self.tie == "lifo":
            return -eid
        return (self._rng.random(), eid)

    def on_execute(self, item: tuple) -> None:
        """A heap entry was popped: attribute subsequent accesses to it."""
        key = item[1]
        if self.tie == "fifo":
            eid = key
        elif self.tie == "lifo":
            eid = -key
        else:
            eid = key[1]
        when = item[0]
        if when != self._group_when:
            self._flush_group()
            self._group_when = when
        meta = self._pending.pop(eid, None)
        if meta is None:  # scheduled before the tracker was installed
            meta = (when, None, "ev:<pre-existing>", ())
        _, parent, label, site = meta
        self._group_meta[eid] = (parent, label, site)
        self._current = eid
        self.trace.append((when, label))

    def on_access(self, state_id: int, state: str, mode: str) -> None:
        """A state object was read (``mode='r'``) or written (``'w'``).

        Accesses outside the event loop (model construction, teardown)
        have no executing entry and cannot race: ignored."""
        eid = self._current
        if eid is None or eid not in self._group_meta:
            return
        self.accesses_seen += 1
        modes = self._group_access.setdefault((state, state_id), {})
        if modes.get(eid) != "w":  # a write is sticky
            modes[eid] = mode

    # -- happens-before analysis ----------------------------------------
    def _ordered(self, a: int, b: int) -> bool:
        """Is there a schedule path between ``a`` and ``b`` (either way)
        within the current same-timestamp group?  Parent chains stop at
        the first entry outside the group: an earlier-timestamp ancestor
        orders an entry against *everything* earlier, never against a
        same-timestamp peer."""
        meta = self._group_meta
        for root, other in ((b, a), (a, b)):
            parent = meta[root][0]
            while parent is not None and parent in meta:
                if parent == other:
                    return True
                parent = meta[parent][0]
        return False

    def _flush_group(self) -> None:
        """Analyze the finished timestamp group for conflicting,
        unordered pairs and drop its metadata."""
        when = self._group_when
        for (state, _sid), modes in self._group_access.items():
            if len(modes) < 2 or "w" not in modes.values():
                continue
            eids = sorted(modes)
            pairs = 0
            for i, a in enumerate(eids):
                for b in eids[i + 1 :]:
                    if modes[a] != "w" and modes[b] != "w":
                        continue
                    pairs += 1
                    if pairs > MAX_PAIRS_PER_STATE:
                        self.truncated_pairs += 1
                        break
                    if not self._ordered(a, b):
                        self._record(when, state, a, b, modes)
                if pairs > MAX_PAIRS_PER_STATE:
                    break
        self._group_access.clear()
        self._group_meta.clear()

    def _record(self, when: float, state: str, a: int, b: int,
                modes: Dict[int, str]) -> None:
        _, a_label, a_site = self._group_meta[a]
        _, b_label, b_site = self._group_meta[b]
        finding = RaceFinding(
            when=when, state=state,
            a_label=a_label, a_site=a_site, a_mode=modes[a],
            b_label=b_label, b_site=b_site, b_mode=modes[b],
        )
        key = finding.key()
        existing = self._findings.get(key)
        if existing is not None:
            self._findings[key] = RaceFinding(
                when=existing.when, state=state,
                a_label=a_label, a_site=a_site, a_mode=modes[a],
                b_label=b_label, b_site=b_site, b_mode=modes[b],
                count=existing.count + 1,
            )
        elif len(self._findings) < MAX_FINDINGS:
            self._findings[key] = finding

    # -- results --------------------------------------------------------
    def report(self) -> RaceReport:
        """Finalize (flushes the live group) and aggregate findings."""
        self._flush_group()
        self._group_when = None
        self._current = None
        findings = sorted(self._findings.values(), key=lambda f: (f.when, f.state))
        return RaceReport(
            tie=self.tie, seed=self.seed,
            entries=self.entries_seen, accesses=self.accesses_seen,
            findings=findings, truncated_pairs=self.truncated_pairs,
        )


#: The installed tracker, if any (mirrors the engine-side hooks).
_TRACKER: Optional[RaceTracker] = None


def current() -> Optional[RaceTracker]:
    """The armed tracker, or None."""
    return _TRACKER


def enable(tie: str = "fifo", seed: Optional[int] = None) -> RaceTracker:
    """Arm race detection for simulators created from now on."""
    global _TRACKER
    from repro.sim import engine

    tracker = RaceTracker(tie=tie, seed=seed)
    engine.set_instrumentation(lambda: tracker, tracker.on_access)
    _TRACKER = tracker
    return tracker


def disable() -> None:
    """Disarm race detection (already-created monitored simulators keep
    their monitor; new ones are created clean)."""
    global _TRACKER
    from repro.sim import engine

    engine.set_instrumentation(None, None)
    _TRACKER = None


class detected:
    """Context manager: arm the ShadowScheduler for the block.

    >>> with race.detected() as tracker:     # doctest: +SKIP
    ...     run_scenario()
    >>> tracker.report().findings            # doctest: +SKIP

    ``tie``/``seed`` select the same-timestamp order, so the same
    context manager drives both detection and perturbation replays.
    """

    def __init__(self, tie: str = "fifo", seed: Optional[int] = None):
        self.tie = tie
        self.seed = seed
        self.tracker: Optional[RaceTracker] = None
        self._previous: Optional[tuple] = None

    def __enter__(self) -> RaceTracker:
        from repro.sim import engine

        self._previous = (engine._monitor_factory, engine.access_hook)
        self.tracker = enable(tie=self.tie, seed=self.seed)
        return self.tracker

    def __exit__(self, *exc_info) -> None:
        global _TRACKER
        from repro.sim import engine

        engine.set_instrumentation(*self._previous)
        _TRACKER = None
