"""Tie-break perturbation harness: CONFIRMED vs BENIGN races.

The dynamic detector (:mod:`repro.analysis.race`) flags *potential*
simulation races: same-timestamp heap entries that touch the same state
with no schedule edge between them.  Whether such a race matters is an
empirical question — do the events commute?  This harness answers it by
re-running a scenario under every same-timestamp tie-break order the
engine supports:

* ``fifo`` — insertion order, the engine's default (the baseline);
* ``lifo`` — reversed tie order, the most adversarial deterministic
  perturbation;
* ``random`` × N seeds — seeded shuffles of each tie group.

Each run records the final metrics (at full float precision, via
``float.hex``) and the canonical event trace: for every timestamp, the
multiset of executed entry labels.  A scenario whose *metrics* are
identical under every order does not depend on the FIFO tie-break
accident for its results; flagged races are then **BENIGN** (the
outputs commute).  Metric divergence makes the flagged races
**CONFIRMED** — the published figure depends on an ordering the model
never pinned down.  Trace divergence with converged metrics is reported
as informational detail: the run took a different path through the
same-timestamp groups but the outputs provably commute.

Scenarios are deliberately *small* versions of the paper figures: the
same code paths (same builders, same protocol stacks, same apps), sized
to run in seconds.  ``python -m repro.analysis --race-check all`` drives
the full set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.race import RaceFinding, detected

#: scenario name -> builder returning {metric: float|int}.
_SCENARIOS: Dict[str, Callable[[], Dict[str, float]]] = {}


def scenario(name: str):
    """Register a scenario builder under ``name``."""

    def deco(fn: Callable[[], Dict[str, float]]):
        _SCENARIOS[name] = fn
        return fn

    return deco


def scenario_names() -> List[str]:
    return sorted(_SCENARIOS)


# --------------------------------------------------------------------------
# Figure scenarios.  Each reuses the exact benchmark code paths behind the
# paper figures, shrunk to a few round trips / messages.
# --------------------------------------------------------------------------

@scenario("fig3")
def _fig3() -> Dict[str, float]:
    from repro.bench.micro import raw_rtt
    from repro.bench.uam import uam_single_cell_rtt, uam_xfer_rtt

    return {
        "raw_rtt_32": raw_rtt(32, n=3).mean_us,
        "raw_rtt_1024": raw_rtt(1024, n=2).mean_us,
        "uam_rtt_32": uam_single_cell_rtt(32, n=2).mean_us,
        "uam_xfer_256": uam_xfer_rtt(256, n=2).mean_us,
    }


@scenario("fig4")
def _fig4() -> Dict[str, float]:
    from repro.bench.micro import raw_bandwidth

    small = raw_bandwidth(128, n=60)
    large = raw_bandwidth(1024, n=40)
    return {
        "bw_128": small.bytes_per_second,
        "bw_128_losses": small.losses,
        "bw_1024": large.bytes_per_second,
        "bw_1024_losses": large.losses,
    }


@scenario("fig5")
def _fig5() -> Dict[str, float]:
    from repro.splitc.apps.sample_sort import sample_sort
    from repro.splitc.harness import run_on_machine
    from repro.splitc.machines import ATM_CLUSTER

    result = run_on_machine(
        ATM_CLUSTER, sample_sort, nprocs=4, label="sample-sort",
        n_per_proc=128, seed=11,
    )
    return {
        "total_us": result.total_us,
        "comm_us": result.comm_us,
        "verified": int(result.verified),
    }


@scenario("fig6")
def _fig6() -> Dict[str, float]:
    from repro.bench.ip import udp_rtt

    return {
        "udp_rtt_unet": udp_rtt(64, kind="unet", n=2).mean_us,
        "udp_rtt_kernel": udp_rtt(64, kind="kernel-atm", n=2).mean_us,
    }


@scenario("fig7")
def _fig7() -> Dict[str, float]:
    from repro.bench.ip import udp_bandwidth

    unet = udp_bandwidth(2048, kind="unet", n=50)
    kernel = udp_bandwidth(2048, kind="kernel-atm", n=50)
    return {
        "unet_recv_rate": unet.recv_rate,
        "unet_drops": unet.drops,
        "kernel_recv_rate": kernel.recv_rate,
        "kernel_drops": kernel.drops,
    }


@scenario("fig8")
def _fig8() -> Dict[str, float]:
    from repro.bench.ip import tcp_bandwidth

    unet = tcp_bandwidth(4096, kind="unet", window=8192, total_bytes=120_000)
    kernel = tcp_bandwidth(
        4096, kind="kernel-atm", window=32768, total_bytes=120_000
    )
    return {
        "unet_bps": unet.bytes_per_second,
        "kernel_bps": kernel.bytes_per_second,
    }


@scenario("fig9")
def _fig9() -> Dict[str, float]:
    from repro.bench.ip import tcp_rtt, udp_rtt

    return {
        "udp_rtt_eth": udp_rtt(64, kind="kernel-eth", n=2).mean_us,
        "tcp_rtt_unet": tcp_rtt(64, kind="unet", n=2).mean_us,
    }


@scenario("sample_sort")
def _sample_sort() -> Dict[str, float]:
    """One Split-C app end-to-end over real UAM on the simulated cluster."""
    from repro.splitc.apps.sample_sort import sample_sort
    from repro.splitc.harness import run_on_unet_cluster

    result = run_on_unet_cluster(
        sample_sort, nprocs=4, label="sample-sort", n_per_proc=64, seed=11
    )
    return {
        "total_us": result.total_us,
        "comm_us": result.comm_us,
        "verified": int(result.verified),
    }


# --------------------------------------------------------------------------
# Canonicalization and diffing
# --------------------------------------------------------------------------

def _canonical_metrics(metrics: Dict[str, float]) -> Dict[str, str]:
    out = {}
    for key in sorted(metrics):
        value = metrics[key]
        out[key] = value.hex() if isinstance(value, float) else repr(value)
    return out


def _canonical_trace(
    trace: Sequence[Tuple[float, str]]
) -> List[Tuple[str, Tuple[Tuple[str, int], ...]]]:
    """Collapse an execution trace into ordered timestamp groups.

    Each group is ``(time.hex(), sorted multiset of labels)``: the
    *content* of a tie group matters, the FIFO order inside it does not
    — reordering within a timestamp is exactly the freedom the engine
    never promised away."""
    groups: List[Tuple[str, Tuple[Tuple[str, int], ...]]] = []
    current_when: Optional[float] = None
    counts: Dict[str, int] = {}
    for when, label in trace:
        if when != current_when:
            if current_when is not None:
                groups.append(
                    (current_when.hex(), tuple(sorted(counts.items())))
                )
            current_when = when
            counts = {}
        counts[label] = counts.get(label, 0) + 1
    if current_when is not None:
        groups.append((current_when.hex(), tuple(sorted(counts.items()))))
    return groups


@dataclass
class PerturbRun:
    """One execution of a scenario under one tie-break order."""

    tie: str
    seed: Optional[int]
    metrics: Dict[str, str]
    trace_groups: List[Tuple[str, Tuple[Tuple[str, int], ...]]]
    races: List[RaceFinding]
    entries: int

    @property
    def order(self) -> str:
        return self.tie if self.seed is None else f"{self.tie}:{self.seed}"


@dataclass
class OrderDiff:
    """How one perturbed run differs from the FIFO baseline."""

    order: str
    metric_diffs: List[str]  # "name: baseline -> perturbed"
    trace_diff: Optional[str]  # first diverging group, or None

    @property
    def metrics_diverged(self) -> bool:
        return bool(self.metric_diffs)

    @property
    def trace_reordered(self) -> bool:
        return self.trace_diff is not None


@dataclass
class ScenarioVerdict:
    """The harness verdict for one scenario.

    CONFIRMED is driven by *metric* divergence only: a perturbed order
    producing different final numbers proves the figure depends on the
    tie-break.  A reordered trace with identical metrics means the
    same-timestamp events took a different path but commuted, which is
    the definition of benign."""

    scenario: str
    baseline: PerturbRun
    runs: List[PerturbRun]
    diffs: List[OrderDiff]
    confirmed: List[RaceFinding] = field(default_factory=list)
    benign: List[RaceFinding] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return any(diff.metrics_diverged for diff in self.diffs)

    @property
    def trace_reordered(self) -> bool:
        return any(diff.trace_reordered for diff in self.diffs)

    @property
    def status(self) -> str:
        if self.diverged:
            return "CONFIRMED" if self.confirmed else "DIVERGED"
        return "BENIGN" if self.benign else "CLEAN"

    def summary(self) -> str:
        orders = ", ".join(run.order for run in self.runs)
        note = (
            " (trace reordered, metrics identical)"
            if self.trace_reordered and not self.diverged
            else ""
        )
        return (
            f"race-check [{self.scenario}] {self.status}{note}: "
            f"{len(self.confirmed)} confirmed / {len(self.benign)} benign "
            f"race(s); {self.baseline.entries} heap entries; orders tried: "
            f"fifo, {orders}"
        )

    def format(self) -> str:
        lines = [self.summary()]
        for diff in self.diffs:
            if not (diff.metrics_diverged or diff.trace_reordered):
                continue
            verb = "diverges" if diff.metrics_diverged else "reorders"
            lines.append(f"  order {diff.order} {verb} vs fifo:")
            for metric_diff in diff.metric_diffs:
                lines.append(f"    metric {metric_diff}")
            if diff.trace_diff:
                lines.append(f"    trace  {diff.trace_diff}")
        bucket = (
            ("CONFIRMED", self.confirmed) if self.confirmed
            else ("benign", self.benign)
        )
        label, findings = bucket
        for finding in findings[:10]:
            lines.append("")
            lines.append(f"[{label}] {finding.format()}")
        if len(findings) > 10:
            lines.append(f"... and {len(findings) - 10} more {label} race(s)")
        return "\n".join(lines)


def run_scenario(
    name: str, tie: str = "fifo", seed: Optional[int] = None
) -> PerturbRun:
    """One monitored execution of ``name`` under the given tie order."""
    builder = _SCENARIOS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown scenario {name!r} (known: {', '.join(scenario_names())})"
        )
    with detected(tie=tie, seed=seed) as tracker:
        metrics = builder()
        report = tracker.report()
    return PerturbRun(
        tie=tie,
        seed=seed,
        metrics=_canonical_metrics(metrics),
        trace_groups=_canonical_trace(tracker.trace),
        races=report.findings,
        entries=report.entries,
    )


def _diff_runs(baseline: PerturbRun, other: PerturbRun) -> OrderDiff:
    metric_diffs = []
    for key in sorted(set(baseline.metrics) | set(other.metrics)):
        a, b = baseline.metrics.get(key), other.metrics.get(key)
        if a != b:
            metric_diffs.append(f"{key}: {a} -> {b}")
    trace_diff = None
    a_groups, b_groups = baseline.trace_groups, other.trace_groups
    for i in range(max(len(a_groups), len(b_groups))):
        a = a_groups[i] if i < len(a_groups) else None
        b = b_groups[i] if i < len(b_groups) else None
        if a != b:
            trace_diff = (
                f"first divergence at group {i}: "
                f"fifo={_show_group(a)} vs {other.order}={_show_group(b)}"
            )
            break
    return OrderDiff(
        order=other.order, metric_diffs=metric_diffs, trace_diff=trace_diff
    )


def _show_group(group) -> str:
    if group is None:
        return "<trace ended>"
    when_hex, counts = group
    t = float.fromhex(when_hex)
    inner = ", ".join(
        f"{label} x{count}" if count > 1 else label for label, count in counts
    )
    return f"t={t:.3f}us [{inner}]"


def race_check(
    name: str,
    random_orders: int = 2,
    base_seed: int = 1,
) -> ScenarioVerdict:
    """Run ``name`` under fifo, lifo, and N seeded-random tie orders and
    classify every flagged race as CONFIRMED or BENIGN."""
    baseline = run_scenario(name, tie="fifo")
    orders: List[Tuple[str, Optional[int]]] = [("lifo", None)]
    orders += [("random", base_seed + i) for i in range(random_orders)]
    runs = [run_scenario(name, tie=tie, seed=seed) for tie, seed in orders]
    diffs = [_diff_runs(baseline, run) for run in runs]
    diverged = any(diff.metrics_diverged for diff in diffs)
    verdict = ScenarioVerdict(
        scenario=name, baseline=baseline, runs=runs, diffs=diffs
    )
    if diverged:
        verdict.confirmed = list(baseline.races)
    else:
        verdict.benign = list(baseline.races)
    return verdict


def check_all(
    names: Optional[Sequence[str]] = None,
    random_orders: int = 2,
) -> List[ScenarioVerdict]:
    return [
        race_check(name, random_orders=random_orders)
        for name in (names if names is not None else scenario_names())
    ]
