"""``python -m repro.analysis``: run simlint, simflow (``--flow``), or
the determinism harness.

Exit codes: 0 clean, 1 violations/findings (or a determinism mismatch),
2 usage or lint-infrastructure errors (unreadable path, syntax error,
bad baseline file).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    suppress,
    write_baseline,
)
from repro.analysis.linter import LintError, lint_paths
from repro.analysis.rules import all_rules, get_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "simlint: repo-specific static analysis for the U-Net "
            "simulator, plus the run-to-run determinism harness"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "instead of simlint, run simflow: interprocedural typestate "
            "(segment buffers, receive descriptors, endpoints, timer "
            "handles), determinism inference, and cross-shard escape "
            "analysis over the whole-repo call graph"
        ),
    )
    parser.add_argument(
        "--flow-checks",
        metavar="CHECKS",
        help=(
            "comma-separated simflow checks to run "
            "(typestate, determinism, cross-shard; default: all)"
        ),
    )
    parser.add_argument(
        "--cost",
        action="store_true",
        help=(
            "instead of simlint, run simcost: hot-path reachability from "
            "the event-callback roots, a weighted static cost model, "
            "profile-guided ranking against BENCH_perf.json's event mix, "
            "and the vectorization-candidate report"
        ),
    )
    parser.add_argument(
        "--cost-checks",
        metavar="CHECKS",
        help=(
            "comma-separated simcost checks that produce findings "
            "(alloc, alloc-loop, str-format, attr-dict, global-loop, "
            "kwargs-call, try-loop, gen-resume; default: the actionable "
            "tier alloc-loop,str-format,kwargs-call,try-loop)"
        ),
    )
    parser.add_argument(
        "--cost-top",
        type=int,
        default=15,
        metavar="N",
        help="hot functions to show in the ranking (default: 15)",
    )
    parser.add_argument(
        "--cost-profile",
        metavar="FILE",
        help=(
            "perf report to weight the ranking with (default: the "
            "nearest BENCH_perf.json; 'none' forces the static-only "
            "fallback)"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "suppress findings recorded in this baseline file (matched by "
            "path/rule/message, count-aware); works for simlint and --flow"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "instead of failing, write the current findings to the "
            "--baseline file and exit 0"
        ),
    )
    parser.add_argument(
        "--determinism",
        action="store_true",
        help=(
            "instead of linting, run the fig3 RTT benchmark twice under "
            "different PYTHONHASHSEEDs and diff the event traces"
        ),
    )
    parser.add_argument(
        "--det-rounds",
        type=int,
        default=2,
        metavar="N",
        help="ping-pong rounds per size for --determinism (default: 2)",
    )
    parser.add_argument(
        "--det-sizes",
        default="0,48",
        metavar="BYTES,...",
        help="message sizes for --determinism (default: 0,48)",
    )
    parser.add_argument(
        "--race-check",
        metavar="SCENARIO",
        help=(
            "instead of linting, run the named scenario (fig3..fig8, "
            "sample_sort, a comma-separated list, or 'all') under fifo, "
            "lifo, and seeded-random same-timestamp tie-break orders and "
            "report CONFIRMED vs BENIGN schedule-order races"
        ),
    )
    parser.add_argument(
        "--race-orders",
        type=int,
        default=2,
        metavar="N",
        help="number of seeded-random orders for --race-check (default: 2)",
    )
    parser.add_argument(
        "--race-verbose",
        action="store_true",
        help="print every flagged race, not just diverging scenarios",
    )
    return parser


def _load_baseline_or_none(args):
    """(baseline Counter or None, exit code or None)."""
    if not args.baseline or args.write_baseline:
        return None, None
    try:
        return load_baseline(args.baseline), None
    except BaselineError as exc:
        print(str(exc), file=sys.stderr)
        return None, 2


def _run_flow(args) -> int:
    from repro.analysis.flow import analyze_paths

    checks = None
    if args.flow_checks:
        checks = [c.strip() for c in args.flow_checks.split(",") if c.strip()]
    try:
        findings = analyze_paths(args.paths, checks)
    except KeyError as exc:
        print(f"simflow: {exc.args[0]}", file=sys.stderr)
        return 2
    except (LintError, SyntaxError) as exc:
        print(f"simflow: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        if not args.baseline:
            print("simflow: --write-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        write_baseline(args.baseline, findings)
        print(f"simflow: wrote {len(findings)} finding(s) to {args.baseline}")
        return 0
    baseline, code = _load_baseline_or_none(args)
    suppressed = 0
    if code is not None:
        return code
    if baseline is not None:
        findings, suppressed = suppress(findings, baseline)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_dict() for f in findings],
                    "count": len(findings),
                    "suppressed": suppressed,
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        if suppressed:
            print(f"simflow: {suppressed} baselined finding(s) suppressed", file=sys.stderr)
        if findings:
            print(f"simflow: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


def _run_cost(args) -> int:
    from repro.analysis import cost

    checks = None
    if args.cost_checks:
        checks = [c.strip() for c in args.cost_checks.split(",") if c.strip()]
    use_profile = args.cost_profile != "none"
    profile_path = args.cost_profile if use_profile else None
    try:
        report = cost.analyze_paths(
            args.paths,
            checks=checks,
            profile_path=profile_path,
            use_profile=use_profile,
        )
    except KeyError as exc:
        print(f"simcost: {exc.args[0]}", file=sys.stderr)
        return 2
    except (LintError, SyntaxError) as exc:
        print(f"simcost: {exc}", file=sys.stderr)
        return 2
    findings = report.findings
    if args.write_baseline:
        if not args.baseline:
            print("simcost: --write-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        write_baseline(args.baseline, findings)
        print(f"simcost: wrote {len(findings)} finding(s) to {args.baseline}")
        return 0
    baseline, code = _load_baseline_or_none(args)
    if code is not None:
        return code
    suppressed = 0
    if baseline is not None:
        findings, suppressed = suppress(findings, baseline)
    if args.format == "json":
        payload = report.to_dict(top=args.cost_top)
        payload["findings"] = [f.to_dict() for f in findings]
        payload["count"] = len(findings)
        payload["suppressed"] = suppressed
        print(json.dumps(payload, indent=2))
        return 1 if findings else 0
    for finding in findings:
        print(finding.format())
    if findings:
        print()
    source = report.profile_source
    print(
        f"simcost: profile = {source}"
        if source
        else "simcost: no engine profile found, static-only ranking"
    )
    from repro.analysis.cost.rank import render_ranking

    print(render_ranking(report.functions, args.cost_top))
    print(
        f"simcost: {len(report.candidates)} vectorization candidate(s) "
        f"(batchable callback bodies):"
    )
    for candidate in report.candidates:
        print(candidate.format())
    if report.batched:
        print(
            f"simcost: {len(report.batched)} candidate(s) already wired "
            f"to a batch kernel (repro.sim.batch):"
        )
        for candidate in report.batched:
            print(candidate.format())
    if suppressed:
        print(f"simcost: {suppressed} baselined finding(s) suppressed", file=sys.stderr)
    if findings:
        print(f"simcost: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


def _run_race_check(args) -> int:
    from repro.analysis.perturb import check_all, scenario_names

    if args.race_check == "all":
        names = scenario_names()
    else:
        names = [n.strip() for n in args.race_check.split(",") if n.strip()]
        unknown = [n for n in names if n not in scenario_names()]
        if unknown:
            print(
                f"race-check: unknown scenario(s) {', '.join(unknown)} "
                f"(known: {', '.join(scenario_names())})",
                file=sys.stderr,
            )
            return 2
    verdicts = check_all(names, random_orders=args.race_orders)
    failed = False
    for verdict in verdicts:
        if verdict.diverged or args.race_verbose:
            print(verdict.format())
        else:
            print(verdict.summary())
        if verdict.diverged:
            failed = True
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:>18}  {rule.description}")
        return 0

    if args.flow:
        return _run_flow(args)

    if args.cost:
        return _run_cost(args)

    if args.race_check:
        return _run_race_check(args)

    if args.determinism:
        from repro.analysis.determinism import run_ab

        sizes = tuple(int(s) for s in args.det_sizes.split(",") if s)
        report = run_ab(sizes=sizes, rounds=args.det_rounds)
        print(report.summary())
        if not report.identical:
            print(report.diff)
            return 1
        return 0

    try:
        rules = (
            get_rules([name.strip() for name in args.select.split(",") if name.strip()])
            if args.select
            else all_rules()
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    try:
        violations = lint_paths(args.paths, rules)
    except LintError as exc:
        print(f"simlint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if not args.baseline:
            print("simlint: --write-baseline requires --baseline FILE", file=sys.stderr)
            return 2
        write_baseline(args.baseline, violations)
        print(f"simlint: wrote {len(violations)} violation(s) to {args.baseline}")
        return 0
    baseline, code = _load_baseline_or_none(args)
    if code is not None:
        return code
    suppressed = 0
    if baseline is not None:
        violations, suppressed = suppress(violations, baseline)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "violations": [v.to_dict() for v in violations],
                    "rules": [rule.name for rule in rules],
                    "count": len(violations),
                    "suppressed": suppressed,
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.format())
        if suppressed:
            print(f"simlint: {suppressed} baselined violation(s) suppressed", file=sys.stderr)
        if violations:
            print(f"simlint: {len(violations)} violation(s)", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
