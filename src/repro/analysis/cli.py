"""``python -m repro.analysis``: run simlint (and the determinism harness).

Exit codes: 0 clean, 1 violations (or a determinism mismatch), 2 usage
or lint-infrastructure errors (unreadable path, syntax error).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.linter import LintError, lint_paths
from repro.analysis.rules import all_rules, get_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "simlint: repo-specific static analysis for the U-Net "
            "simulator, plus the run-to-run determinism harness"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--determinism",
        action="store_true",
        help=(
            "instead of linting, run the fig3 RTT benchmark twice under "
            "different PYTHONHASHSEEDs and diff the event traces"
        ),
    )
    parser.add_argument(
        "--det-rounds",
        type=int,
        default=2,
        metavar="N",
        help="ping-pong rounds per size for --determinism (default: 2)",
    )
    parser.add_argument(
        "--det-sizes",
        default="0,48",
        metavar="BYTES,...",
        help="message sizes for --determinism (default: 0,48)",
    )
    parser.add_argument(
        "--race-check",
        metavar="SCENARIO",
        help=(
            "instead of linting, run the named scenario (fig3..fig8, "
            "sample_sort, a comma-separated list, or 'all') under fifo, "
            "lifo, and seeded-random same-timestamp tie-break orders and "
            "report CONFIRMED vs BENIGN schedule-order races"
        ),
    )
    parser.add_argument(
        "--race-orders",
        type=int,
        default=2,
        metavar="N",
        help="number of seeded-random orders for --race-check (default: 2)",
    )
    parser.add_argument(
        "--race-verbose",
        action="store_true",
        help="print every flagged race, not just diverging scenarios",
    )
    return parser


def _run_race_check(args) -> int:
    from repro.analysis.perturb import check_all, scenario_names

    if args.race_check == "all":
        names = scenario_names()
    else:
        names = [n.strip() for n in args.race_check.split(",") if n.strip()]
        unknown = [n for n in names if n not in scenario_names()]
        if unknown:
            print(
                f"race-check: unknown scenario(s) {', '.join(unknown)} "
                f"(known: {', '.join(scenario_names())})",
                file=sys.stderr,
            )
            return 2
    verdicts = check_all(names, random_orders=args.race_orders)
    failed = False
    for verdict in verdicts:
        if verdict.diverged or args.race_verbose:
            print(verdict.format())
        else:
            print(verdict.summary())
        if verdict.diverged:
            failed = True
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name:>18}  {rule.description}")
        return 0

    if args.race_check:
        return _run_race_check(args)

    if args.determinism:
        from repro.analysis.determinism import run_ab

        sizes = tuple(int(s) for s in args.det_sizes.split(",") if s)
        report = run_ab(sizes=sizes, rounds=args.det_rounds)
        print(report.summary())
        if not report.identical:
            print(report.diff)
            return 1
        return 0

    try:
        rules = (
            get_rules([name.strip() for name in args.select.split(",") if name.strip()])
            if args.select
            else all_rules()
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    try:
        violations = lint_paths(args.paths, rules)
    except LintError as exc:
        print(f"simlint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(
            json.dumps(
                {
                    "violations": [v.to_dict() for v in violations],
                    "rules": [rule.name for rule in rules],
                    "count": len(violations),
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.format())
        if violations:
            print(f"simlint: {len(violations)} violation(s)", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
