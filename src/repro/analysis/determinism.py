"""Run-to-run determinism harness (the fig3 RTT A/B check).

Strings hash differently under every ``PYTHONHASHSEED``, so any set
iteration or hash-order dependence in the scheduler shows up as a
different event timeline between two interpreter runs.  The harness:

1. runs a small fig3-style RTT ping-pong **in a subprocess** under seed
   A, stepping the simulator manually and recording the exact time of
   every processed heap entry (the full event trace), the tracer
   counters, and the RTT samples at full float precision;
2. repeats under seed B;
3. diffs the two traces.  An empty diff proves the run is independent
   of hash ordering.

``python -m repro.analysis --determinism`` drives :func:`run_ab`;
``python -m repro.analysis.determinism --emit`` is the per-seed child
entry point.
"""

from __future__ import annotations

import difflib
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import List, Sequence, Tuple

DEFAULT_SIZES: Tuple[int, ...] = (0, 48)
DEFAULT_ROUNDS = 2
DEFAULT_SEEDS: Tuple[str, ...] = ("1", "4242")

#: Safety valve for the manual step loop.
MAX_STEPS_PER_SIZE = 2_000_000


def trace_run(
    sizes: Sequence[int] = DEFAULT_SIZES, rounds: int = DEFAULT_ROUNDS
) -> str:
    """One fig3-style RTT run; returns the canonical event-trace text."""
    from repro.core import UNetCluster
    from repro.sim import Simulator, Tracer

    out: List[str] = []
    for size in sizes:
        sim = Simulator()
        tracer = Tracer(enabled=True)
        cluster = UNetCluster.pair(sim, tracer=tracer)
        sa = cluster.open_session("alice", "det-a")
        sb = cluster.open_session("bob", "det-b")
        ch_a, ch_b = cluster.connect_sessions(sa, sb, service="det-svc")
        payload = bytes((i * 7 + 3) % 256 for i in range(size))
        rtts: List[float] = []

        def pinger():
            yield from sa.provide_receive_buffers(4)
            for _ in range(rounds):
                t0 = sim.now
                yield from sa.send_copy(ch_a.ident, payload)
                desc = yield from sa.recv()
                rtts.append(sim.now - t0)
                if not desc.is_inline:
                    yield from sa.repost_free(desc)

        def ponger():
            yield from sb.provide_receive_buffers(4)
            for _ in range(rounds):
                desc = yield from sb.recv()
                echoed = sb.peek_payload(desc)
                yield from sb.send_copy(ch_b.ident, echoed)
                if not desc.is_inline:
                    yield from sb.repost_free(desc)

        sim.process(pinger(), name="det.pinger")
        sim.process(ponger(), name="det.ponger")

        # Manual step loop: the trace is the time of *every* heap entry.
        times: List[float] = []
        while sim.peek() != float("inf"):
            times.append(sim.peek())
            sim.step()
            if len(times) >= MAX_STEPS_PER_SIZE:
                raise RuntimeError(f"determinism run diverged at size {size}")

        out.append(f"== size={size} rounds={rounds}")
        out.append(f"events={sim.events_processed}")
        out.append(f"rtts={[t.hex() for t in rtts]}")
        out.append("timeline=" + ",".join(t.hex() for t in times))
        for name in sorted(tracer.counters):
            out.append(f"counter {name}={tracer.counters[name]}")
        for record in tracer.records:
            out.append(str(record))
    return "\n".join(out) + "\n"


@dataclass(frozen=True)
class DeterminismReport:
    seeds: Tuple[str, ...]
    identical: bool
    diff: str
    trace_lines: int

    def summary(self) -> str:
        status = "identical" if self.identical else "DIVERGED"
        return (
            f"determinism: PYTHONHASHSEED {' vs '.join(self.seeds)}: "
            f"{status} ({self.trace_lines} trace lines)"
        )


def _spawn(seed: str, sizes: Sequence[int], rounds: int) -> str:
    """Run :func:`trace_run` in a child interpreter under ``seed``."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis.determinism",
            "--emit",
            "--sizes", ",".join(str(s) for s in sizes),
            "--rounds", str(rounds),
        ],
        capture_output=True,
        text=True,
        env=env,
        check=False,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"determinism child (seed {seed}) failed:\n{result.stderr}"
        )
    return result.stdout


def run_ab(
    seeds: Sequence[str] = DEFAULT_SEEDS,
    sizes: Sequence[int] = DEFAULT_SIZES,
    rounds: int = DEFAULT_ROUNDS,
) -> DeterminismReport:
    """Run the benchmark under each seed and diff the event traces."""
    if len(seeds) < 2:
        raise ValueError("need at least two hash seeds to compare")
    traces = [_spawn(seed, sizes, rounds) for seed in seeds]
    reference = traces[0]
    diffs: List[str] = []
    for seed, trace in zip(seeds[1:], traces[1:]):
        if trace != reference:
            diffs.extend(
                difflib.unified_diff(
                    reference.splitlines(),
                    trace.splitlines(),
                    fromfile=f"seed-{seeds[0]}",
                    tofile=f"seed-{seed}",
                    lineterm="",
                )
            )
    return DeterminismReport(
        seeds=tuple(seeds),
        identical=not diffs,
        diff="\n".join(diffs),
        trace_lines=len(reference.splitlines()),
    )


def _main() -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro.analysis.determinism")
    parser.add_argument("--emit", action="store_true",
                        help="print this interpreter's event trace and exit")
    parser.add_argument("--sizes", default=",".join(map(str, DEFAULT_SIZES)))
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS)
    args = parser.parse_args()
    sizes = tuple(int(s) for s in args.sizes.split(",") if s)
    if args.emit:
        sys.stdout.write(trace_run(sizes, args.rounds))
        return 0
    report = run_ab(sizes=sizes, rounds=args.rounds)
    print(report.summary())
    if not report.identical:
        print(report.diff)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(_main())
