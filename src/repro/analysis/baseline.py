"""Baseline (grandfathering) support shared by simlint and simflow.

A baseline file records known findings so CI can gate on *new* ones
only.  Entries are matched by ``(path, rule, message)`` — deliberately
not by line number, so unrelated edits above a grandfathered finding
do not resurrect it.  Matching is count-aware: a baseline entry with
``count: 2`` absorbs at most two identical findings; a third is new.

Usage::

    python -m repro.analysis src --write-baseline --baseline lint.json
    python -m repro.analysis src --baseline lint.json          # gate
    python -m repro.analysis --flow src --baseline FLOW_baseline.json
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence, Tuple

#: bump when the entry format changes incompatibly.
FORMAT_VERSION = 1

Key = Tuple[str, str, str]


class BaselineError(Exception):
    """The baseline file is unreadable or malformed."""


def _key(record) -> Key:
    """Records are any objects with path/rule/message (Violation, Finding)."""
    return (record.path, record.rule, record.message)


def write_baseline(path: str, records: Sequence) -> None:
    counts = Counter(_key(record) for record in records)
    entries = [
        {"path": p, "rule": r, "message": m, "count": n}
        for (p, r, m), n in sorted(counts.items())
    ]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            {"version": FORMAT_VERSION, "entries": entries}, handle, indent=2
        )
        handle.write("\n")


def load_baseline(path: str) -> Counter:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise BaselineError(f"baseline {path}: {exc}") from exc
    except ValueError as exc:
        raise BaselineError(f"baseline {path}: invalid JSON: {exc}") from exc
    if not isinstance(data, dict) or "entries" not in data:
        raise BaselineError(f"baseline {path}: missing 'entries'")
    if data.get("version") != FORMAT_VERSION:
        raise BaselineError(
            f"baseline {path}: unsupported version {data.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    counts: Counter = Counter()
    for entry in data["entries"]:
        try:
            key = (entry["path"], entry["rule"], entry["message"])
            counts[key] += int(entry.get("count", 1))
        except (TypeError, KeyError) as exc:
            raise BaselineError(f"baseline {path}: malformed entry: {entry!r}") from exc
    return counts


def suppress(records: Sequence, baseline: Counter) -> Tuple[List, int]:
    """Split ``records`` into (new, n_suppressed) against the baseline."""
    budget = Counter(baseline)
    fresh: List = []
    suppressed = 0
    for record in records:
        key = _key(record)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            fresh.append(record)
    return fresh, suppressed
