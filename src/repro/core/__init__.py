"""The U-Net architecture (the paper's primary contribution, §3).

Building blocks:

* :class:`~repro.core.endpoint.Endpoint` -- an application's handle into
  the network: a communication segment plus send/receive/free rings.
* :class:`~repro.core.endpoint.Channel` -- a kernel-installed mapping
  between an endpoint and a network tag (VCI pair).
* :class:`~repro.core.mux.Mux` -- the demultiplexing agent in the NI.
* :class:`~repro.core.kernel_agent.KernelAgent` /
  :class:`~repro.core.kernel_agent.ClusterDirectory` -- set-up,
  tear-down, authentication; the kernel never touches the data path.
* :class:`~repro.core.api.UNetSession` -- the thin user-level library.
* :class:`~repro.core.cluster.UNetCluster` -- full testbed assembly.
* :mod:`repro.core.ni` -- the SBA-100/SBA-200/Fore NI models.
"""

from repro.core.api import UNetSession
from repro.core.cluster import UNetCluster
from repro.core.descriptors import (
    SINGLE_CELL_MAX,
    FreeDescriptor,
    RecvDescriptor,
    SendDescriptor,
)
from repro.core.endpoint import Channel, Endpoint
from repro.core.errors import (
    ChannelError,
    ProtectionError,
    QueueFullError,
    QueueInvariantError,
    ResourceLimitError,
    SegmentOwnershipError,
    SegmentRangeError,
    UNetError,
)
from repro.core.kernel_agent import (
    ClusterDirectory,
    KernelAgent,
    ResourceLimits,
    allow_all,
)
from repro.core.mux import Mux
from repro.core.queues import DescriptorRing
from repro.core.segment import CommSegment
from repro.core.upcall import UpcallCondition, UpcallRegistration, register_upcall

__all__ = [
    "Channel",
    "ChannelError",
    "ClusterDirectory",
    "CommSegment",
    "DescriptorRing",
    "Endpoint",
    "FreeDescriptor",
    "KernelAgent",
    "Mux",
    "ProtectionError",
    "QueueFullError",
    "QueueInvariantError",
    "RecvDescriptor",
    "ResourceLimitError",
    "ResourceLimits",
    "SINGLE_CELL_MAX",
    "SegmentOwnershipError",
    "SegmentRangeError",
    "SendDescriptor",
    "UNetCluster",
    "UNetError",
    "UNetSession",
    "UpcallCondition",
    "UpcallRegistration",
    "allow_all",
    "register_upcall",
]
