"""Fixed-size descriptor rings with back-pressure and wait events (§3.1).

A ring never blocks its producer: ``push`` returns ``False`` when full,
which is exactly the back-pressure the paper specifies ("the network
interface will simply leave the descriptor in the queue and eventually
exert back-pressure to the user process when the queue becomes full").

Consumers (the NI firmware model, or the application polling its
receive queue) either poll with ``pop``/``peek`` or obtain one-shot
events with :meth:`wait_nonempty`.  The *almost-full* condition backs
the second upcall condition of §3.1.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro import obs
from repro.analysis import sanitize
from repro.obs import metrics as _metrics
from repro.sim import Event, Simulator
from repro.sim import engine as _engine


class DescriptorRing:
    """Bounded FIFO of descriptors with notification events."""

    def __init__(
        self,
        sim: Simulator,
        capacity: int,
        name: str = "ring",
        almost_full_fraction: float = 0.75,
    ):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        if not 0.0 < almost_full_fraction <= 1.0:
            raise ValueError("almost_full_fraction must be in (0, 1]")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.almost_full_level = max(1, int(capacity * almost_full_fraction))
        self._items: Deque[Any] = deque()
        self._nonempty_waiters: List[Event] = []
        self._almost_full_waiters: List[Event] = []
        self._space_waiters: List[Event] = []
        self.pushed = 0
        self.popped = 0
        self.rejected = 0
        self._san = sanitize.RingSanitizer(name) if sanitize.enabled() else None
        # Metric keys are precomputed: the guarded hot path pays no
        # per-operation string formatting.
        self._mk_depth = f"ring.{name}.depth"
        self._mk_rejected = f"ring.{name}.rejected"

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def is_almost_full(self) -> bool:
        return len(self._items) >= self.almost_full_level

    def push(self, item: Any) -> bool:
        """Append a descriptor; False (back-pressure) when the ring is full."""
        if _engine.access_hook is not None:
            _engine.access_hook(
                id(self), f"ring:{self.name}", "r" if self.is_full else "w"
            )
        if self.is_full:
            self.rejected += 1
            _o = obs.active
            if _o is not None:
                _o.bump(f"ring.{self.name}.rejected")
            _m = _metrics.active
            if _m is not None:
                _m.count(self._mk_rejected)
            return False
        if self._san is not None:
            self._san.on_push(item, len(self._items), self.capacity)
        self._items.append(item)
        self.pushed += 1
        _o = obs.active
        if _o is not None:
            _o.sample(self.sim._now, f"ring.{self.name}.depth", len(self._items))
        _m = _metrics.active
        if _m is not None:
            _m.observe(self._mk_depth, len(self._items))
        if self._nonempty_waiters:
            waiters, self._nonempty_waiters = self._nonempty_waiters, []
            for event in waiters:
                event.succeed()
        if self.is_almost_full and self._almost_full_waiters:
            waiters, self._almost_full_waiters = self._almost_full_waiters, []
            for event in waiters:
                event.succeed()
        return True

    def pop(self) -> Optional[Any]:
        """Remove and return the oldest descriptor, or None when empty."""
        if _engine.access_hook is not None:
            _engine.access_hook(
                id(self), f"ring:{self.name}", "w" if self._items else "r"
            )
        if not self._items:
            return None
        item = self._items.popleft()
        if self._san is not None:
            self._san.on_pop(item)
        self.popped += 1
        _o = obs.active
        if _o is not None:
            _o.sample(self.sim._now, f"ring.{self.name}.depth", len(self._items))
        _m = _metrics.active
        if _m is not None:
            _m.observe(self._mk_depth, len(self._items))
        if self._space_waiters:
            waiters, self._space_waiters = self._space_waiters, []
            for event in waiters:
                event.succeed()
        return item

    def peek(self) -> Optional[Any]:
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"ring:{self.name}", "r")
        return self._items[0] if self._items else None

    def wait_nonempty(self) -> Event:
        """One-shot event: triggers when the ring holds a descriptor.

        Triggers immediately if it already does.
        """
        event = Event(self.sim)
        if self._items:
            event.succeed()
        else:
            self._nonempty_waiters.append(event)
        return event

    def wait_almost_full(self) -> Event:
        """One-shot event for the §3.1 'receive queue is almost full'
        upcall condition."""
        event = Event(self.sim)
        if self.is_almost_full:
            event.succeed()
        else:
            self._almost_full_waiters.append(event)
        return event

    def wait_space(self) -> Event:
        """One-shot event: triggers when the ring is (or becomes) not full."""
        event = Event(self.sim)
        if not self.is_full:
            event.succeed()
        else:
            self._space_waiters.append(event)
        return event

    def drain(self) -> List[Any]:
        """Pop everything currently queued (single-upcall consumption, §3.1)."""
        if _engine.access_hook is not None:
            _engine.access_hook(
                id(self), f"ring:{self.name}", "w" if self._items else "r"
            )
        items = list(self._items)
        self._items.clear()
        if self._san is not None:
            self._san.on_drain(items)
        self.popped += len(items)
        if items and self._space_waiters:
            waiters, self._space_waiters = self._space_waiters, []
            for event in waiters:
                event.succeed()
        return items
