"""The vendor's original SBA-200 firmware -- the baseline of §4.2.1.

Fore's firmware off-loads ATM adaptation-layer processing onto the i960
behind a kernel-firmware interface patterned after BSD mbufs / System V
streams bufs.  The i960 traverses those linked data structures on the
*host* via DMA, which makes its per-cell costs exceed the wire time:
the measured result was a ~160 us round trip and ~13 MB/s with 4 KB
packets -- worse than the far simpler SBA-100.

The model reuses the SBA-200 machinery (same board) with the cost
profile of the vendor firmware and without U-Net's single-cell fast
paths.
"""

from __future__ import annotations

from typing import Optional

from repro.atm.network import NetworkPort
from repro.core.ni.costs import ForeCosts, Sba200Costs
from repro.core.ni.sba200 import Sba200UNet
from repro.host import Workstation
from repro.sim import Tracer


class ForeFirmwareNI(Sba200UNet):
    """SBA-200 running Fore's stock firmware (measured via the §4.2.1
    test program that maps the kernel-firmware interface into user
    space)."""

    #: Spans from the inherited firmware loops carry this identity so a
    #: timeline distinguishes vendor firmware from re-programmed U-Net.
    obs_firmware = "fore-vendor"

    __slots__ = ("fore_costs",)

    def __init__(
        self,
        host: Workstation,
        port: NetworkPort,
        costs: Optional[ForeCosts] = None,
        tracer: Optional[Tracer] = None,
    ):
        fore = costs if costs is not None else ForeCosts()
        translated = Sba200Costs(
            host_post_send_us=fore.host_send_us,
            host_recv_us=fore.host_recv_us,
            host_post_free_us=1.5,
            i960_tx_poll_us=0.0,
            # No single-cell optimization: single takes the full path.
            i960_tx_single_us=fore.i960_tx_packet_us + fore.i960_tx_per_cell_us,
            i960_tx_packet_us=fore.i960_tx_packet_us,
            i960_tx_per_cell_us=fore.i960_tx_per_cell_us,
            i960_rx_per_cell_us=fore.i960_rx_per_cell_us,
            i960_rx_single_us=fore.i960_rx_packet_us,
            i960_rx_packet_us=fore.i960_rx_packet_us,
            input_fifo_cells=fore.input_fifo_cells,
            tx_queue_cells=fore.tx_queue_cells,
        )
        super().__init__(
            host,
            port,
            costs=translated,
            tracer=tracer,
            single_cell_optimization=False,
        )
        self.fore_costs = fore
