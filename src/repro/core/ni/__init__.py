"""Network interface implementations (paper §4).

* :class:`~repro.core.ni.sba200.Sba200UNet` -- the flagship: U-Net
  firmware on the SBA-200's i960 coprocessor (§4.2).
* :class:`~repro.core.ni.sba100.Sba100UNet` -- PIO interface with
  kernel-emulated endpoints and software AAL5 CRC (§4.1).
* :class:`~repro.core.ni.fore.ForeFirmwareNI` -- the vendor firmware
  baseline the paper measured at ~160 us RTT (§4.2.1).
"""

from repro.core.ni.base import NetworkInterface
from repro.core.ni.costs import ForeCosts, Sba100Costs, Sba200Costs
from repro.core.ni.fore import ForeFirmwareNI
from repro.core.ni.sba100 import Sba100UNet
from repro.core.ni.sba200 import Sba200UNet

__all__ = [
    "ForeCosts",
    "ForeFirmwareNI",
    "NetworkInterface",
    "Sba100Costs",
    "Sba100UNet",
    "Sba200Costs",
    "Sba200UNet",
]
