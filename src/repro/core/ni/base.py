"""Common machinery shared by the NI models."""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.atm.cell import Cell
from repro.atm.network import NetworkPort
from repro.core.endpoint import Endpoint
from repro.core.mux import Mux
from repro.host import Workstation
from repro.sim import Event, Simulator, Store, Tracer
from repro.sim import batch as _batch


class NetworkInterface:
    """Base NI: owns the mux, the attached endpoints, and the port.

    Subclasses implement the transmit/receive firmware loops.  The U-Net
    architecture is deliberately independent of the NI hardware (§1);
    everything above this class (endpoints, channels, UAM, TCP/UDP)
    works unchanged across the three implementations.
    """

    __slots__ = (
        "host",
        "sim",
        "port",
        "name",
        "mux",
        "tracer",
        "endpoints",
        "_attach_event",
        "input_fifo",
        "input_fifo_drops",
        "_k_rxfifo_drop",
        "_k_rxfifo_depth",
        "_k_rx_ring_full",
        "_k_rx_nobuf",
        "_k_rx_inline_pdus",
        "_k_rx_buffered_pdus",
        "_k_rx_buffered_bytes",
    )

    def __init__(
        self,
        host: Workstation,
        port: NetworkPort,
        input_fifo_cells: int = 292,
        tracer: Optional[Tracer] = None,
    ):
        self.host = host
        self.sim: Simulator = host.sim
        self.port = port
        self.name = f"{host.name}.ni"
        self.mux = Mux(name=f"{self.name}.mux")
        self.tracer = tracer or host.tracer
        self.endpoints: List[Endpoint] = []
        self._attach_event: Event = self.sim.event()
        # Cell input FIFO between the fiber and the (modelled) firmware.
        self.input_fifo = Store(self.sim, capacity=input_fifo_cells, name=f"{self.name}.rxfifo")
        self.input_fifo_drops = 0
        # Counter/sample keys for the per-cell and per-PDU paths, built
        # once: _rx_sink and the delivery helpers run on the event hot
        # path and must not re-format strings.
        self._k_rxfifo_drop = f"{self.name}.rxfifo_drop"
        self._k_rxfifo_depth = f"{self.name}.rxfifo_depth"
        self._k_rx_ring_full = f"{self.name}.rx_ring_full"
        self._k_rx_nobuf = f"{self.name}.rx_nobuf"
        self._k_rx_inline_pdus = f"{self.name}.rx_inline_pdus"
        self._k_rx_buffered_pdus = f"{self.name}.rx_buffered_pdus"
        self._k_rx_buffered_bytes = f"{self.name}.rx_buffered_bytes"
        port.set_rx_sink(self._rx_sink)
        host.ni = self

    # -- endpoint management (called by the kernel agent) ----------------
    def attach_endpoint(self, endpoint: Endpoint) -> None:
        self.endpoints.append(endpoint)
        if not self._attach_event.triggered:
            self._attach_event.succeed()
        self._attach_event = self.sim.event()
        self._on_attach(endpoint)

    def detach_endpoint(self, endpoint: Endpoint) -> None:
        self.endpoints.remove(endpoint)

    def _on_attach(self, endpoint: Endpoint) -> None:
        """Hook for subclasses (e.g. start a TX service process)."""

    # -- fiber side -------------------------------------------------------
    def _rx_sink(self, cell: Cell) -> None:
        accepted = self.input_fifo.try_put(cell)
        if not accepted:
            self.input_fifo_drops += 1
            self.tracer.count(self._k_rxfifo_drop)
        _o = obs.active
        if _o is not None:
            _o.sample(
                self.sim._now,
                self._k_rxfifo_depth,
                len(self.input_fifo),
                host=self.host.name,
            )
            if not accepted:
                _o.bump(self._k_rxfifo_drop)

    # -- delivery helpers shared by all NI models --------------------------
    def _deliver_inline(self, channel, payload: bytes) -> bool:
        """Single-cell fast path: the message rides in the descriptor."""
        from repro.core.descriptors import RecvDescriptor

        desc = RecvDescriptor(
            channel=channel.ident, length=len(payload), inline=payload
        )
        if channel.endpoint.deliver(desc):
            _o = obs.active
            if _o is not None:
                _o.bump(self._k_rx_inline_pdus)
            return True
        self.tracer.count(self._k_rx_ring_full)
        return False

    def _deliver_buffered(self, channel, payload: bytes) -> bool:
        """Scatter a message into free-queue buffers and deliver it."""
        from repro.core.descriptors import RecvDescriptor

        endpoint = channel.endpoint
        remaining = len(payload)
        cursor = 0
        used = []
        popped = []
        while remaining > 0:
            free = endpoint.free_queue.pop()
            if free is None:
                # Out of receive buffers: the whole message is dropped and
                # any buffers already popped go back to the free queue.
                endpoint.no_buffer_drops += 1
                self.tracer.count(self._k_rx_nobuf)
                for fd in popped:
                    endpoint.free_queue.push(fd)
                return False
            popped.append(free)
            take = min(free.length, remaining)
            endpoint.segment.write(free.offset, payload[cursor : cursor + take])
            # The scatter list itself is the product of this helper.
            used.append((free.offset, take))  # simcost: disable=cost-alloc
            cursor += take
            remaining -= take
        desc = RecvDescriptor(
            channel=channel.ident, length=len(payload), bufs=tuple(used)
        )
        if endpoint.deliver(desc):
            _o = obs.active
            if _o is not None:
                _o.bump(self._k_rx_buffered_pdus)
                _o.bump(self._k_rx_buffered_bytes, len(payload))
            return True
        for fd in popped:
            endpoint.free_queue.push(fd)
        self.tracer.count(self._k_rx_ring_full)
        return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name} endpoints={len(self.endpoints)}>"


# _rx_sink is a pure drop-on-overflow FIFO append whenever no observer
# is active (the obs block is the only other effect), so the delivery
# batch kernels may replace N calls with one bulk extend.  The
# ``unbatched-candidate`` lint rule guards this registration: growing
# _rx_sink a non-straight-line body requires a ``# simcost: disable``
# justification or dropping the registration.
_batch.register_rx_extend(NetworkInterface._rx_sink)
