"""U-Net on the Fore SBA-100: programmed I/O through kernel traps (§4.1).

The SBA-100 has no on-board processor, no DMA, and no AAL5 CRC
hardware, so the U-Net architecture runs *in the kernel*: hand-crafted
fast traps send and receive individual cells, and a library performs
AAL5 segmentation/reassembly -- including the CRC-32 in software, which
is why 33%/40% of the send/receive AAL5 overheads are CRC (Table 1).

All processing is charged to the *host* CPU (clock-scaled), unlike the
SBA-200 model where the i960 does the work.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.atm.aal5 import Reassembler, cells_for_pdu, segment_pdu
from repro.atm.network import NetworkPort
from repro.core.descriptors import SINGLE_CELL_MAX, SendDescriptor
from repro.core.endpoint import Endpoint
from repro.core.ni.base import NetworkInterface
from repro.core.ni.costs import Sba100Costs
from repro.host import Workstation
from repro.sim import Tracer


class Sba100UNet(NetworkInterface):
    """Kernel-trap U-Net over the PIO-only SBA-100."""

    __slots__ = (
        "costs",
        "reassembler",
        "send_errors",
        "pdus_sent",
        "pdus_received",
        "_k_tx_badchannel",
        "_k_rx_bad_pdu",
        "_k_rx_unmatched",
    )

    def __init__(
        self,
        host: Workstation,
        port: NetworkPort,
        costs: Optional[Sba100Costs] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.costs = costs if costs is not None else Sba100Costs()
        super().__init__(
            host, port, input_fifo_cells=self.costs.input_fifo_cells, tracer=tracer
        )
        self.reassembler = Reassembler()
        # The 36-cell output FIFO: the PIO loop blocks when it is full.
        self.port.tx_link.set_queue_capacity(self.costs.output_fifo_cells)
        self.send_errors = 0
        self.pdus_sent = 0
        self.pdus_received = 0
        # Per-packet counter keys, built once (the kernel loops run per
        # cell/PDU and must not re-format strings).
        self._k_tx_badchannel = f"{self.name}.tx_badchannel"
        self._k_rx_bad_pdu = f"{self.name}.rx_bad_pdu"
        self._k_rx_unmatched = f"{self.name}.rx_unmatched"
        self.sim.process(self._rx_kernel(), name=f"{self.name}.rx")

    def _per_cell_send_us(self) -> float:
        return self.costs.aal5_send_per_cell_us + self.costs.crc_us_per_byte * 48

    def _per_cell_recv_us(self) -> float:
        return self.costs.aal5_recv_per_cell_us + self.costs.crc_us_per_byte * 48

    def _on_attach(self, endpoint: Endpoint) -> None:
        self.sim.process(
            self._tx_kernel(endpoint), name=f"{self.name}.tx.{endpoint.name}"
        )

    def _tx_kernel(self, endpoint: Endpoint):
        """Kernel send path: one fast trap per packet, then a PIO loop
        pushing cells into the 36-deep output FIFO with software SAR+CRC."""
        costs = self.costs
        while not endpoint.destroyed:
            yield endpoint.send_queue.wait_nonempty()
            if endpoint.destroyed:
                return
            desc = endpoint.send_queue.pop()
            if desc is None:
                continue
            channel = endpoint.channels.get(desc.channel)
            if channel is None or not channel.open:
                self.send_errors += 1
                self.tracer.count(self._k_tx_badchannel)
                continue
            if desc.inline is not None:
                payload = desc.inline
            else:
                payload = b"".join(
                    endpoint.segment.read(off, length) for off, length in desc.bufs
                )
            _o = obs.active
            _sp = (
                _o.begin(self.sim.now, "trap_tx", "ni_tx", host=self.host.name)
                if _o is not None
                else None
            )
            yield from self.host.cpu.compute(costs.send_trap_us)
            for cell in segment_pdu(payload, channel.tx_vci):
                yield from self.host.cpu.compute(self._per_cell_send_us())
                yield self.port.tx_link.put(cell)
            if _sp is not None:
                _o.annotate(_sp, bytes=len(payload))
                _o.end(_sp, self.sim.now)
            desc.injected = True
            if desc.completion is not None and not desc.completion.triggered:
                desc.completion.succeed()
            endpoint.messages_sent += 1
            self.pdus_sent += 1

    def _rx_kernel(self):
        """Kernel receive path: a fast trap pops cells off the input FIFO
        and the SAR library reassembles them (CRC in software)."""
        costs = self.costs
        while True:
            cell = yield self.input_fifo.get()
            _o = obs.active
            _sp = (
                _o.begin(self.sim.now, "trap_rx", "ni_rx", host=self.host.name)
                if _o is not None
                else None
            )
            try:
                yield from self.host.cpu.compute(self._per_cell_recv_us())
                payload = self.reassembler.push(cell)
                if payload is None:
                    if cell.last:
                        self.tracer.count(self._k_rx_bad_pdu)
                    continue
                yield from self.host.cpu.compute(costs.recv_trap_us)
                channel = self.mux.demux(cell.vci)
                if channel is None:
                    self.tracer.count(self._k_rx_unmatched)
                    continue
                if _sp is not None:
                    _o.annotate(_sp, bytes=len(payload))
                if len(payload) <= SINGLE_CELL_MAX and cells_for_pdu(len(payload)) == 1:
                    if self._deliver_inline(channel, payload):
                        self.pdus_received += 1
                else:
                    if self._deliver_buffered(channel, payload):
                        self.pdus_received += 1
            finally:
                if _sp is not None:
                    _o.end(_sp, self.sim.now)
