"""U-Net firmware on the Fore SBA-200's i960 coprocessor (§4.2.2).

The i960 is modelled as a capacity-1 resource: transmit and receive
firmware compete for it, just as on the real 25 MHz part.  Message data
genuinely flows: send descriptors are gathered out of the communication
segment, segmented into AAL5 cells, serialized onto the TAXI fiber,
switched, reassembled (CRC-checked), and scattered into receive buffers
popped off the destination endpoint's free queue.

Fast paths from the paper:

* single-cell sends are optimized (payload <= 40 bytes rides in the
  descriptor, no buffer management);
* single-cell receives go "directly into the next receive queue entry",
  skipping the free queue;
* multi-cell receives pull fixed-size buffers off the free queue and
  DMA the descriptor in when the last cell arrives.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.atm.aal5 import Reassembler, cells_for_pdu, segment_pdu
from repro.atm.network import NetworkPort
from repro.core.descriptors import SINGLE_CELL_MAX, SendDescriptor
from repro.core.endpoint import Endpoint
from repro.core.ni.base import NetworkInterface
from repro.core.ni.costs import Sba200Costs
from repro.host import Workstation
from repro.sim import Resource, Tracer


class Sba200UNet(NetworkInterface):
    """Base-level U-Net on re-programmed SBA-200 firmware."""

    #: Firmware identity recorded on obs spans (Fore overrides this).
    obs_firmware = "unet-sba200"

    __slots__ = (
        "costs",
        "i960",
        "single_cell_optimization",
        "reassembler",
        "send_errors",
        "pdus_sent",
        "pdus_received",
        "_k_tx_badchannel",
        "_k_rx_bad_pdu",
        "_k_rx_unmatched",
    )

    def __init__(
        self,
        host: Workstation,
        port: NetworkPort,
        costs: Optional[Sba200Costs] = None,
        tracer: Optional[Tracer] = None,
        single_cell_optimization: bool = True,
    ):
        self.costs = costs if costs is not None else Sba200Costs()
        super().__init__(
            host, port, input_fifo_cells=self.costs.input_fifo_cells, tracer=tracer
        )
        #: The single on-board processor; TX and RX firmware share it.
        self.i960 = Resource(self.sim, capacity=1, name=f"{self.name}.i960")
        self.single_cell_optimization = single_cell_optimization
        self.reassembler = Reassembler()
        self.port.tx_link.set_queue_capacity(self.costs.tx_queue_cells)
        self.send_errors = 0
        self.pdus_sent = 0
        self.pdus_received = 0
        # Per-packet counter keys, built once (the firmware loops run per
        # cell/PDU and must not re-format strings).
        self._k_tx_badchannel = f"{self.name}.tx_badchannel"
        self._k_rx_bad_pdu = f"{self.name}.rx_bad_pdu"
        self._k_rx_unmatched = f"{self.name}.rx_unmatched"
        self.sim.process(self._rx_firmware(), name=f"{self.name}.rx")

    # -- transmit ---------------------------------------------------------
    def _on_attach(self, endpoint: Endpoint) -> None:
        self.sim.process(
            self._tx_firmware(endpoint), name=f"{self.name}.tx.{endpoint.name}"
        )

    def _gather(self, endpoint: Endpoint, desc: SendDescriptor) -> bytes:
        if desc.inline is not None:
            return desc.inline
        parts = [endpoint.segment.read(off, length) for off, length in desc.bufs]
        return b"".join(parts)

    def _tx_firmware(self, endpoint: Endpoint):
        """Service one endpoint's send queue (the i960 polls these
        i960-resident queues without DMA, §4.2.2)."""
        costs = self.costs
        while not endpoint.destroyed:
            yield endpoint.send_queue.wait_nonempty()
            if endpoint.destroyed:
                return
            desc = endpoint.send_queue.pop()
            if desc is None:
                continue
            channel = endpoint.channels.get(desc.channel)
            if channel is None or not channel.open:
                self.send_errors += 1
                self.tracer.count(self._k_tx_badchannel)
                continue
            payload = self._gather(endpoint, desc)
            n_cells = cells_for_pdu(len(payload))
            single = (
                self.single_cell_optimization
                and n_cells == 1
                and len(payload) <= SINGLE_CELL_MAX
            )
            if single:
                cost = costs.i960_tx_poll_us + costs.i960_tx_single_us
            else:
                cost = (
                    costs.i960_tx_poll_us
                    + costs.i960_tx_packet_us
                    + costs.i960_tx_per_cell_us * n_cells
                )
            _o = obs.active
            _sp = (
                _o.begin(
                    self.sim.now,
                    "tx_single" if single else "tx_packet",
                    "ni_tx",
                    host=self.host.name,
                )
                if _o is not None
                else None
            )
            yield from self.i960.use(cost)
            cells = segment_pdu(payload, channel.tx_vci)
            # Paced by the outbound cell queue: back-pressure propagates
            # to the send ring when the fiber is busy.  The whole AAL5
            # train goes down in one claim; the event fires when the
            # last cell has been admitted, same pacing as per-cell puts.
            yield self.port.tx_link.put_train(cells)
            if _sp is not None:
                _o.annotate(
                    _sp,
                    cells=n_cells,
                    bytes=len(payload),
                    firmware=self.obs_firmware,
                )
                _o.end(_sp, self.sim.now)
            desc.injected = True
            if desc.completion is not None and not desc.completion.triggered:
                desc.completion.succeed()
            endpoint.messages_sent += 1
            self.pdus_sent += 1

    # -- receive ------------------------------------------------------------
    def _rx_firmware(self):
        """The i960 polls the network input FIFO (§4.2.2)."""
        costs = self.costs
        while True:
            cell = yield self.input_fifo.get()
            _o = obs.active
            _sp = (
                _o.begin(self.sim.now, "rx_cell", "ni_rx", host=self.host.name)
                if _o is not None
                else None
            )
            try:
                yield from self.i960.use(costs.i960_rx_per_cell_us)
                first_of_pdu = self.reassembler.pending_cells(cell.vci) == 0
                payload = self.reassembler.push(cell)
                if payload is None:
                    if cell.last:
                        self.tracer.count(self._k_rx_bad_pdu)
                    continue
                single = (
                    self.single_cell_optimization
                    and first_of_pdu
                    and cell.last
                    and len(payload) <= SINGLE_CELL_MAX
                )
                channel = self.mux.demux(cell.vci)
                if channel is None:
                    self.tracer.count(self._k_rx_unmatched)
                    continue
                if _sp is not None:
                    _sp.name = "rx_single" if single else "rx_packet"
                    _o.annotate(
                        _sp, bytes=len(payload), firmware=self.obs_firmware
                    )
                if single:
                    yield from self.i960.use(costs.i960_rx_single_us)
                    if self._deliver_inline(channel, payload):
                        self.pdus_received += 1
                else:
                    yield from self.i960.use(costs.i960_rx_packet_us)
                    if self._deliver_buffered(channel, payload):
                        self.pdus_received += 1
            finally:
                if _sp is not None:
                    _o.end(_sp, self.sim.now)
