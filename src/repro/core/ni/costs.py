"""Cost tables for the NI models, calibrated against the paper.

Every constant cites the measurement it is tuned to reproduce; the
calibration tests in ``tests/core/test_calibration.py`` pin the derived
end-to-end numbers (65 us single-cell RTT, ~6 us/cell increment,
saturation near 800 bytes, Table 1's breakdown, the Fore firmware's
160 us RTT).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Sba200Costs:
    """i960/host costs for the custom U-Net firmware (§4.2.2-§4.2.3).

    Calibration targets: 65 us single-cell round trip; longer messages
    start at ~120 us for 48 bytes plus ~6 us per additional cell; the
    fiber saturates at packet sizes around 800 bytes (Figures 3 and 4).
    """

    #: Host: push one descriptor ("a double word store to the
    #: i960-resident transmit queue").
    host_post_send_us: float = 1.0
    #: Host: notice and pop a receive descriptor when polling.
    host_recv_us: float = 1.5
    #: Host: push a descriptor onto the free queue.
    host_post_free_us: float = 0.8
    #: i960: notice a doorbell / poll the next send descriptor.
    i960_tx_poll_us: float = 3.0
    #: i960: single-cell send fast path (payload rides in the descriptor).
    i960_tx_single_us: float = 5.0
    #: i960: per-packet send processing for the buffer path (descriptor
    #: fetch, DMA setup).
    i960_tx_packet_us: float = 8.0
    #: i960: per-cell send cost (32-byte DMA bursts fetch two cells).
    i960_tx_per_cell_us: float = 0.5
    #: i960: per-cell receive handling (poll input FIFO, move cell).
    i960_rx_per_cell_us: float = 0.5
    #: i960: single-cell receive fast path ("directly transferred into
    #: the next receive queue entry").
    i960_rx_single_us: float = 13.0
    #: i960: multi-cell receive completion (pop free-queue buffers, DMA
    #: payload, DMA the message descriptor into the receive queue).
    i960_rx_packet_us: float = 33.0
    #: Depth of the cell input FIFO (the SBA hardware had 292 cells).
    input_fifo_cells: int = 292
    #: Cells of transmit queue between i960 and fiber.
    tx_queue_cells: int = 40


@dataclass
class Sba100Costs:
    """Trap-level PIO costs for the SBA-100 (§4.1, Table 1).

    Table 1 targets: one-way 33 us total = 21 us trap-level send+receive
    across the switch + 7 us AAL5 send overhead + 5 us AAL5 receive
    overhead; CRC is 33% of send and 40% of receive AAL5 overhead;
    bandwidth limited to 6.8 MB/s at 1 KB packets.
    """

    #: Kernel fast trap to send one cell (28 instructions, §4.1),
    #: including pushing the cell into the 36-deep output FIFO.
    send_trap_us: float = 6.2
    #: Kernel fast trap to receive one cell (43 instructions).
    recv_trap_us: float = 6.0
    #: AAL5 SAR library send processing per cell, excluding CRC.
    aal5_send_per_cell_us: float = 4.7
    #: AAL5 SAR library receive processing per cell, excluding CRC.
    aal5_recv_per_cell_us: float = 3.0
    #: Software CRC-32 (the card lacks AAL5 CRC hardware): us per byte.
    #: 48 bytes * 0.048 = 2.3 us = 33% of the 7 us send overhead.
    crc_us_per_byte: float = 0.048
    #: Output FIFO depth in cells (hardware: 36).
    output_fifo_cells: int = 36
    #: Input FIFO depth in cells (hardware: 292).
    input_fifo_cells: int = 292


@dataclass
class ForeCosts:
    """The vendor's original firmware (§4.2.1).

    Targets: ~160 us round trip and ~13 MB/s with 4 KB packets.  The
    killer is the complexity of the kernel-firmware interface: the i960
    traverses mbuf/streams-buf-style linked data structures on the host
    via DMA.
    """

    #: Host-side send call into the (mapped) kernel-firmware interface.
    host_send_us: float = 8.0
    #: i960: walk the linked descriptor structures via DMA and start a send.
    i960_tx_packet_us: float = 22.0
    #: i960: per-cell transmit cost.
    i960_tx_per_cell_us: float = 1.2
    #: i960: receive a packet, build host buffer chains via DMA.
    i960_rx_packet_us: float = 24.0
    #: i960: per-cell receive cost (follows host-resident chains via DMA,
    #: which is what makes per-cell receive exceed the wire time and caps
    #: bandwidth at ~13 MB/s).
    i960_rx_per_cell_us: float = 3.45
    #: Host-side receive processing (buffer chain traversal).
    host_recv_us: float = 10.0
    input_fifo_cells: int = 292
    tx_queue_cells: int = 40
