"""Direct-access U-Net (§3.6) -- implemented as a simulation extension.

The paper specifies direct-access U-Net (true zero copy: the sender
names an *offset in the destination communication segment* and the NI
deposits data there directly) but could not build it: 1995 hardware had
no NI-side MMU and too few I/O-bus address lines.  The simulation
substrate has neither limitation, so this module provides the
architecture as a strict superset of the base level, exactly as §3.6
describes it.

Framing: the direct-access firmware prefixes every PDU with a 5-byte
header (1 type byte + 4 offset bytes), so a direct-access NI
interoperates only with other direct-access NIs -- the same kind of
firmware-version coupling real U-Net had.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.atm.aal5 import cells_for_pdu, segment_pdu
from repro.core.descriptors import RecvDescriptor, SendDescriptor
from repro.core.endpoint import Endpoint
from repro.core.ni.sba200 import Sba200UNet

HEADER = struct.Struct(">BI")
TYPE_BASE = 0
TYPE_DIRECT = 1


@dataclass
class DirectSendDescriptor(SendDescriptor):
    """A send descriptor naming a destination-segment offset (§3.6)."""

    remote_offset: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.remote_offset < 0:
            raise ValueError("remote offset cannot be negative")


class DirectAccessNI(Sba200UNet):
    """SBA-200 U-Net firmware extended with direct-access deposits.

    Base-level descriptors work unchanged; :class:`DirectSendDescriptor`
    triggers the direct path: no free-queue pop, no receive buffer --
    the payload lands at the sender-specified offset of the destination
    segment and a zero-copy notification descriptor is queued.
    """

    #: i960 receive cost for a direct deposit: cheaper than the buffered
    #: path (no free-queue DMA, no descriptor DMA of buffer lists).
    i960_rx_direct_us = 12.0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.direct_deposits = 0
        self.direct_range_errors = 0

    # -- transmit: add framing ------------------------------------------------
    def _gather(self, endpoint: Endpoint, desc: SendDescriptor) -> bytes:
        body = super()._gather(endpoint, desc)
        if isinstance(desc, DirectSendDescriptor):
            return HEADER.pack(TYPE_DIRECT, desc.remote_offset) + body
        return HEADER.pack(TYPE_BASE, 0) + body

    # -- receive: strip framing, dispatch -----------------------------------
    def _rx_firmware(self):
        costs = self.costs
        while True:
            cell = yield self.input_fifo.get()
            yield from self.i960.use(costs.i960_rx_per_cell_us)
            first_of_pdu = self.reassembler.pending_cells(cell.vci) == 0
            framed = self.reassembler.push(cell)
            if framed is None:
                if cell.last:
                    self.tracer.count(f"{self.name}.rx_bad_pdu")
                continue
            channel = self.mux.demux(cell.vci)
            if channel is None:
                self.tracer.count(f"{self.name}.rx_unmatched")
                continue
            msg_type, offset = HEADER.unpack(framed[: HEADER.size])
            payload = framed[HEADER.size :]
            if msg_type == TYPE_DIRECT:
                yield from self.i960.use(self.i960_rx_direct_us)
                self._deposit_direct(channel, offset, payload)
            elif (
                self.single_cell_optimization
                and first_of_pdu
                and cell.last
                and len(payload) <= 40 - HEADER.size
            ):
                yield from self.i960.use(costs.i960_rx_single_us)
                if self._deliver_inline(channel, payload):
                    self.pdus_received += 1
            else:
                yield from self.i960.use(costs.i960_rx_packet_us)
                if self._deliver_buffered(channel, payload):
                    self.pdus_received += 1

    def _deposit_direct(self, channel, offset: int, payload: bytes) -> None:
        endpoint = channel.endpoint
        try:
            endpoint.segment.check_range(offset, len(payload))
        except Exception:
            # Out-of-segment deposit: protection says drop, never write.
            self.direct_range_errors += 1
            self.tracer.count(f"{self.name}.direct_range_error")
            return
        endpoint.segment.write(offset, payload)
        self.direct_deposits += 1
        notification = RecvDescriptor(
            channel=channel.ident,
            length=len(payload),
            bufs=((offset, len(payload)),),
        )
        if endpoint.deliver(notification):
            self.pdus_received += 1
        else:
            self.tracer.count(f"{self.name}.rx_ring_full")
