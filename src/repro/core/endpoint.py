"""Endpoints: an application's handle into the network (§3.1).

An endpoint bundles a communication segment with send, receive, and
free descriptor rings.  All application-facing operations verify the
caller's identity against the owning process -- endpoints, segments and
queues "are only accessible by the owning process" (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.descriptors import FreeDescriptor, RecvDescriptor, SendDescriptor
from repro.core.errors import ProtectionError, UNetError
from repro.core.queues import DescriptorRing
from repro.core.segment import CommSegment
from repro.sim import Event, Simulator


@dataclass
class Channel:
    """A registered communication channel (§3.2).

    Created only by the kernel agent after authentication; maps the
    endpoint to the network tag (here: a transmit/receive VCI pair) and
    records the peer for diagnostics.
    """

    ident: int
    endpoint: "Endpoint"
    tx_vci: int
    rx_vci: int
    peer_host: str
    open: bool = True

    def __repr__(self) -> str:
        return (
            f"<Channel {self.ident} ep={self.endpoint.name} "
            f"tx_vci={self.tx_vci} rx_vci={self.rx_vci} peer={self.peer_host}>"
        )


class Endpoint:
    """Communication segment + send/recv/free rings + upcall hooks."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        owner: str,
        segment_size: int = 64 * 1024,
        send_ring: int = 64,
        recv_ring: int = 64,
        free_ring: int = 64,
        emulated: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.owner = owner
        self.emulated = emulated
        self.segment = CommSegment(segment_size, owner=owner)
        self.send_queue = DescriptorRing(sim, send_ring, name=f"{name}.sq")
        self.recv_queue = DescriptorRing(sim, recv_ring, name=f"{name}.rq")
        self.free_queue = DescriptorRing(sim, free_ring, name=f"{name}.fq")
        self.channels: Dict[int, Channel] = {}
        self.upcalls_enabled = True
        self._upcall_pending = False
        self._enable_waiters = []
        # Delivery statistics (visible to the owner; §7.4 feedback).
        self.messages_sent = 0
        self.messages_received = 0
        self.receive_drops = 0  # recv ring full -> message dropped
        self.no_buffer_drops = 0  # free queue empty -> message dropped
        self.destroyed = False

    # -- protection -----------------------------------------------------
    def check_owner(self, caller: str) -> None:
        if caller != self.owner:
            raise ProtectionError(
                f"process {caller!r} may not access endpoint {self.name!r} "
                f"owned by {self.owner!r}"
            )

    def check_alive(self) -> None:
        if self.destroyed:
            raise UNetError(f"endpoint {self.name!r} has been destroyed")

    # -- application-side operations -------------------------------------
    def post_send(self, descriptor: SendDescriptor, caller: str) -> bool:
        """Push a send descriptor; False signals back-pressure (§3.1)."""
        self.check_owner(caller)
        self.check_alive()
        channel = self.channels.get(descriptor.channel)
        if channel is None or not channel.open:
            raise ProtectionError(
                f"channel {descriptor.channel} is not registered on endpoint {self.name!r}"
            )
        for offset, length in descriptor.bufs:
            self.segment.check_range(offset, length)
        return self.send_queue.push(descriptor)

    def post_free(self, free: FreeDescriptor, caller: str) -> bool:
        """Hand a receive buffer to the NI via the free queue (§3.4)."""
        self.check_owner(caller)
        self.check_alive()
        self.segment.check_range(free.offset, free.length)
        return self.free_queue.push(free)

    def recv_poll(self, caller: str) -> Optional[RecvDescriptor]:
        """Poll the receive queue (the §3.1 polling model)."""
        self.check_owner(caller)
        self.check_alive()
        return self.recv_queue.pop()

    def recv_drain(self, caller: str):
        """Consume every pending message in one go (single-upcall rule)."""
        self.check_owner(caller)
        self.check_alive()
        return self.recv_queue.drain()

    def wait_recv(self, caller: str) -> Event:
        """Blocking wait for the receive queue to become non-empty
        (the select()-style model of §3.1)."""
        self.check_owner(caller)
        self.check_alive()
        return self.recv_queue.wait_nonempty()

    def wait_send_complete(self, descriptor: SendDescriptor) -> Event:
        """Event that fires once the NI marks the descriptor injected.

        The NI triggers the descriptor's completion event when it sets
        the injected flag (§3.1: "the associated send buffer can be
        reused").
        """
        if descriptor.completion is None:
            descriptor.completion = Event(self.sim)
        if descriptor.injected and not descriptor.completion.triggered:
            descriptor.completion.succeed()
        return descriptor.completion

    # -- upcall critical sections (§3.1) ----------------------------------
    def disable_upcalls(self, caller: str) -> None:
        self.check_owner(caller)
        self.upcalls_enabled = False

    def enable_upcalls(self, caller: str) -> None:
        self.check_owner(caller)
        self.upcalls_enabled = True
        waiters, self._enable_waiters = self._enable_waiters, []
        for event in waiters:
            event.succeed()

    def wait_upcalls_enabled(self) -> Event:
        event = Event(self.sim)
        if self.upcalls_enabled:
            event.succeed()
        else:
            self._enable_waiters.append(event)
        return event

    # -- NI-side delivery --------------------------------------------------
    def deliver(self, descriptor: RecvDescriptor) -> bool:
        """Used by the NI/mux to push a received message descriptor."""
        self.check_alive()
        ok = self.recv_queue.push(descriptor)
        if ok:
            self.messages_received += 1
        else:
            self.receive_drops += 1
        return ok

    def __repr__(self) -> str:
        kind = "emulated" if self.emulated else "regular"
        return f"<Endpoint {self.name} ({kind}) owner={self.owner}>"
