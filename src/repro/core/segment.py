"""Communication segments: the pinned memory regions that hold message data.

Per §3.1/§3.4 a communication segment is a limited-size region of
memory, pinned to physical pages and mapped into the NI's DMA space.
Send-buffer management inside the segment is *entirely up to the
process*; the architecture only requires buffers to lie within the
segment and be aligned.  A simple first-fit allocator is provided as a
convenience for applications, but raw offset access is the primitive.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro import obs
from repro.analysis import sanitize
from repro.core.errors import SegmentOwnershipError, SegmentRangeError
from repro.sim import engine as _engine

#: NI DMA alignment requirement for buffers (paper §3.4).
BUFFER_ALIGNMENT = 8


def align_up(value: int, alignment: int = BUFFER_ALIGNMENT) -> int:
    return (value + alignment - 1) // alignment * alignment


class CommSegment:
    """A bounded, pinned buffer region owned by one endpoint.

    The segment stores real bytes: protocol layers above (UAM, UDP, TCP)
    genuinely compose and parse their packets here.
    """

    def __init__(self, size: int, owner: str = ""):
        if size <= 0:
            raise ValueError("segment size must be positive")
        self.size = size
        self.owner = owner
        self._mem = bytearray(size)
        # First-fit free list of (offset, length), kept sorted and merged.
        self._free: List[Tuple[int, int]] = [(0, size)]
        # Live allocations (offset -> aligned length): free() validates
        # against this table, so ownership bugs fail at the bad call.
        self._allocs: Dict[int, int] = {}
        self._san = (
            sanitize.SegmentSanitizer(owner or "segment")
            if sanitize.enabled()
            else None
        )

    # -- raw access ------------------------------------------------------
    def check_range(self, offset: int, length: int) -> None:
        if length < 0 or offset < 0 or offset + length > self.size:
            raise SegmentRangeError(
                f"range [{offset}, {offset}+{length}) outside segment of {self.size} bytes"
            )

    def write(self, offset: int, data: bytes) -> None:
        self.check_range(offset, len(data))
        if self._san is not None:
            self._san.check_write(offset, len(data))
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"seg:{self.owner or 'segment'}", "w")
        _o = obs.active
        if _o is not None:
            _o.bump("segment.bytes_written", len(data))
        self._mem[offset : offset + len(data)] = data

    def read(self, offset: int, length: int) -> bytes:
        self.check_range(offset, length)
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"seg:{self.owner or 'segment'}", "r")
        _o = obs.active
        if _o is not None:
            _o.bump("segment.bytes_read", length)
        return bytes(self._mem[offset : offset + length])

    # -- convenience allocator --------------------------------------------
    def alloc(self, length: int) -> int:
        """First-fit allocate an aligned buffer; returns its offset."""
        if length <= 0:
            raise ValueError("allocation length must be positive")
        need = align_up(length)
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"seg:{self.owner or 'segment'}", "w")
        for i, (off, avail) in enumerate(self._free):
            if avail >= need:
                if avail == need:
                    del self._free[i]
                else:
                    self._free[i] = (off + need, avail - need)
                self._allocs[off] = need
                if self._san is not None:
                    self._san.on_alloc(off, need)
                return off
        raise SegmentRangeError(
            f"segment exhausted: cannot allocate {length} bytes "
            f"({self.free_bytes} free, fragmented)"
        )

    def free(self, offset: int, length: int) -> None:
        """Return a buffer to the free list (must match a prior alloc)."""
        need = align_up(length)
        self.check_range(offset, need)
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"seg:{self.owner or 'segment'}", "w")
        if self._allocs.get(offset) != need:
            raise SegmentOwnershipError(self._describe_bad_free(offset, need))
        del self._allocs[offset]
        if self._san is not None:
            self._san.on_free(offset, need)
        self._free.append((offset, need))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for off, ln in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + ln)
            elif merged and merged[-1][0] + merged[-1][1] > off:
                raise SegmentOwnershipError(
                    f"double free or overlapping free at offset {off}"
                )
            else:
                merged.append((off, ln))
        self._free = merged

    def _describe_bad_free(self, offset: int, need: int) -> str:
        """Classify a rejected free for the error message (cold path)."""
        where = f"segment of {self.owner!r}" if self.owner else "segment"
        got = self._allocs.get(offset)
        if got is not None:
            return (
                f"free length mismatch at offset {offset} in {where}: "
                f"{got} bytes allocated, {need} freed"
            )
        if self._san is not None and self._san.was_freed(offset):
            return f"double free of buffer at offset {offset} in {where}"
        end = offset + need
        for live_off, live_len in self._allocs.items():
            if live_off < end and offset < live_off + live_len:
                return (
                    f"overlapping free [{offset}, {end}) in {where} cuts "
                    f"into live allocation [{live_off}, {live_off + live_len})"
                )
        return (
            f"free of never-allocated offset {offset} in {where} "
            f"(or already freed)"
        )

    def check_teardown(self) -> None:
        """Raise :class:`SegmentOwnershipError` when allocations leak.

        Only meaningful for code that manages buffers through the
        convenience allocator; raw-offset users have nothing to leak.
        """
        if self._san is not None:
            self._san.check_teardown()
        elif self._allocs:
            raise SegmentOwnershipError(
                f"leak-at-teardown: {len(self._allocs)} live allocation(s) "
                f"in segment of {self.owner!r}"
            )

    @property
    def live_allocations(self) -> int:
        return len(self._allocs)

    @property
    def free_bytes(self) -> int:
        return sum(length for _, length in self._free)
