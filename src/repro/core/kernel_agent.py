"""The kernel's role in U-Net: set-up, tear-down, authentication (§3.2).

The kernel is *off* the data path entirely.  Its agent on each host
validates endpoint creation against resource limits (pinned memory, NI
memory -- §4.2.4), and mediates channel creation: route discovery,
switch-path setup through the network signalling service,
authentication, and registration of the resulting tag with the NI mux.

:class:`ClusterDirectory` plays the "operating system service" of §3.2
that maps a destination (host, endpoint) to a route/tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.atm.network import AtmNetwork, VciPair
from repro.core.endpoint import Channel, Endpoint
from repro.core.errors import ChannelError, ProtectionError, ResourceLimitError
from repro.host import Workstation
from repro.sim import Tracer


@dataclass
class ResourceLimits:
    """Kernel-enforced limits on NI resources (§4.2.4)."""

    max_endpoints: int = 16
    max_pinned_bytes: int = 4 * 1024 * 1024
    max_segment_bytes: int = 1024 * 1024
    max_ring_entries: int = 1024


#: Authentication hook: (caller_process, local_host, peer_host) -> bool.
AuthCheck = Callable[[str, str, str], bool]


def allow_all(_caller: str, _local: str, _peer: str) -> bool:
    return True


class KernelAgent:
    """Per-host kernel component of U-Net."""

    def __init__(
        self,
        host: Workstation,
        ni,
        limits: Optional[ResourceLimits] = None,
        auth: AuthCheck = allow_all,
        tracer: Optional[Tracer] = None,
    ):
        self.host = host
        self.ni = ni  # the network interface model this kernel controls
        self.limits = limits if limits is not None else ResourceLimits()
        self.auth = auth
        self.tracer = tracer if tracer is not None else Tracer()
        self.endpoints: List[Endpoint] = []
        self.pinned_bytes = 0
        self._next_channel_id = 1
        self.syscalls = 0
        self._emulation = None  # lazy EmulatedUNet (§3.5)

    @property
    def emulation(self):
        """The kernel's emulated-endpoint service, created on demand."""
        if self._emulation is None:
            from repro.core.emulated import EmulatedUNet

            self._emulation = EmulatedUNet(self)
        return self._emulation

    # -- endpoint lifecycle ------------------------------------------------
    def create_endpoint(
        self,
        owner: str,
        name: str = "",
        segment_size: int = 64 * 1024,
        send_ring: int = 64,
        recv_ring: int = 64,
        free_ring: int = 64,
        emulated: bool = False,
    ) -> Endpoint:
        """System call: create and register an endpoint for ``owner``.

        ``emulated=True`` creates a kernel-emulated endpoint (§3.5): it
        consumes no NI resources (no pinned memory, does not count
        against the endpoint limit) but every message crosses the kernel.
        """
        self.syscalls += 1
        if emulated:
            endpoint = self.emulation.create_endpoint(
                owner,
                name=name,
                segment_size=segment_size,
                send_ring=send_ring,
                recv_ring=recv_ring,
                free_ring=free_ring,
            )
            self.endpoints.append(endpoint)
            return endpoint
        live = [ep for ep in self.endpoints if not ep.destroyed]
        if len(live) >= self.limits.max_endpoints:
            raise ResourceLimitError(
                f"host {self.host.name}: endpoint limit "
                f"({self.limits.max_endpoints}) reached"
            )
        if segment_size > self.limits.max_segment_bytes:
            raise ResourceLimitError(
                f"segment of {segment_size} bytes exceeds the "
                f"{self.limits.max_segment_bytes}-byte limit (base-level U-Net "
                f"bounds communication segments, §3.3)"
            )
        if self.pinned_bytes + segment_size > self.limits.max_pinned_bytes:
            raise ResourceLimitError(
                f"host {self.host.name}: cannot pin {segment_size} more bytes "
                f"({self.pinned_bytes} of {self.limits.max_pinned_bytes} in use)"
            )
        for ring in (send_ring, recv_ring, free_ring):
            if ring > self.limits.max_ring_entries:
                raise ResourceLimitError(f"ring of {ring} entries exceeds limit")
        endpoint = Endpoint(
            self.host.sim,
            name=name or f"{self.host.name}.ep{len(self.endpoints)}",
            owner=owner,
            segment_size=segment_size,
            send_ring=send_ring,
            recv_ring=recv_ring,
            free_ring=free_ring,
        )
        self.endpoints.append(endpoint)
        self.pinned_bytes += segment_size
        self.ni.attach_endpoint(endpoint)
        return endpoint

    def destroy_endpoint(self, endpoint: Endpoint, caller: str) -> None:
        """System call: tear down an endpoint and all its channels."""
        self.syscalls += 1
        endpoint.check_owner(caller)
        for channel in list(endpoint.channels.values()):
            if channel.open:
                self._close_channel_local(channel)
        endpoint.destroyed = True
        if endpoint.emulated:
            self.emulation.emulated.remove(endpoint)
            self.endpoints.remove(endpoint)
            return
        self.pinned_bytes -= endpoint.segment.size
        self.ni.detach_endpoint(endpoint)

    # -- channel management --------------------------------------------------
    def allocate_channel_id(self) -> int:
        ident = self._next_channel_id
        self._next_channel_id += 1
        return ident

    def install_channel(
        self, endpoint: Endpoint, tx_vci: int, rx_vci: int, peer_host: str
    ) -> Channel:
        """Register an authenticated tag with the NI mux (kernel-only)."""
        if endpoint.emulated:
            return self.emulation.install_channel(endpoint, tx_vci, rx_vci, peer_host)
        channel = Channel(
            ident=self.allocate_channel_id(),
            endpoint=endpoint,
            tx_vci=tx_vci,
            rx_vci=rx_vci,
            peer_host=peer_host,
        )
        self.ni.mux.register(channel)
        endpoint.channels[channel.ident] = channel
        return channel

    def _close_channel_local(self, channel: Channel) -> None:
        if channel.endpoint.emulated:
            self.emulation.close_channel(channel)
            return
        channel.open = False
        self.ni.mux.unregister(channel)


class ClusterDirectory:
    """Cluster-wide OS service: endpoint naming, routes, channel setup.

    Applications advertise endpoints under a service name; a connect
    request resolves the name, authenticates both sides, asks the
    network signalling service for a VCI pair plus switch routes, and
    installs the channel in both kernels' muxes (§3.2).
    """

    def __init__(self, network: AtmNetwork):
        self.network = network
        self._agents: Dict[str, KernelAgent] = {}
        self._services: Dict[str, Tuple[str, Endpoint]] = {}
        self.connects = 0

    def register_agent(self, agent: KernelAgent) -> None:
        name = agent.host.name
        if name in self._agents:
            raise ChannelError(f"host {name!r} already registered")
        self._agents[name] = agent

    def agent(self, host_name: str) -> KernelAgent:
        return self._agents[host_name]

    def advertise(self, service: str, endpoint: Endpoint, caller: str) -> None:
        """Publish ``endpoint`` under ``service`` so peers can connect."""
        endpoint.check_owner(caller)
        if service in self._services:
            raise ChannelError(f"service {service!r} already advertised")
        host = self._find_host(endpoint)
        self._services[service] = (host, endpoint)

    def withdraw(self, service: str, caller: str) -> None:
        host, endpoint = self._services[service]
        endpoint.check_owner(caller)
        del self._services[service]

    def _find_host(self, endpoint: Endpoint) -> str:
        for name, agent in self._agents.items():
            if endpoint in agent.endpoints:
                return name
        raise ChannelError("endpoint is not registered with any kernel agent")

    def connect(
        self, endpoint: Endpoint, service: str, caller: str
    ) -> Tuple[Channel, Channel]:
        """Create a full-duplex channel from ``endpoint`` to ``service``.

        Returns (local_channel, remote_channel).  Raises
        :class:`ProtectionError` if either side's authentication hook
        denies the connection.
        """
        endpoint.check_owner(caller)
        if service not in self._services:
            raise ChannelError(f"unknown service {service!r}")
        remote_host, remote_endpoint = self._services[service]
        if remote_endpoint.destroyed:
            raise ChannelError(f"service {service!r} endpoint was destroyed")
        local_host = self._find_host(endpoint)
        local_agent = self._agents[local_host]
        remote_agent = self._agents[remote_host]
        local_agent.syscalls += 1
        if not local_agent.auth(caller, local_host, remote_host):
            raise ProtectionError(
                f"host {local_host}: {caller!r} denied network access to {remote_host}"
            )
        if not remote_agent.auth(remote_endpoint.owner, remote_host, local_host):
            raise ProtectionError(
                f"host {remote_host}: refused connection from {local_host}"
            )
        pair = self.network.open_virtual_circuit(local_host, remote_host)
        local_channel = local_agent.install_channel(
            endpoint, tx_vci=pair.tx, rx_vci=pair.rx, peer_host=remote_host
        )
        remote_channel = remote_agent.install_channel(
            remote_endpoint, tx_vci=pair.rx, rx_vci=pair.tx, peer_host=local_host
        )
        self.connects += 1
        return local_channel, remote_channel

    def disconnect(self, channel: Channel, caller: str) -> None:
        """Tear down both halves of a full-duplex channel."""
        channel.endpoint.check_owner(caller)
        local_host = self._find_host(channel.endpoint)
        peer_agent = self._agents[channel.peer_host]
        self._agents[local_host]._close_channel_local(channel)
        # Emulated endpoints first: their virtual channels share VCIs with
        # the kernel's real channel and must win the match.
        peer_endpoints = sorted(peer_agent.endpoints, key=lambda e: not e.emulated)
        for endpoint in peer_endpoints:
            if endpoint.owner == "<kernel>":
                continue
            for remote in endpoint.channels.values():
                if (
                    remote.open
                    and remote.tx_vci == channel.rx_vci
                    and remote.rx_vci == channel.tx_vci
                ):
                    peer_agent._close_channel_local(remote)
                    self.network.close_virtual_circuit(
                        local_host,
                        channel.peer_host,
                        VciPair(tx=channel.tx_vci, rx=channel.rx_vci),
                    )
                    return
        raise ChannelError("peer half of the channel was not found")
