"""Kernel-emulated U-Net endpoints (§3.5).

Communication segments and message queues on the NI are scarce, so the
kernel can multiplex many *emulated* endpoints onto a single real one.
To the application an emulated endpoint looks exactly like a regular
endpoint -- same :class:`~repro.core.endpoint.Endpoint` object, same
session API -- "except that the performance characteristics are quite
different": every send and receive crosses the kernel (a system call
plus a copy between the pageable user segment and the kernel's pinned
real segment).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.descriptors import (
    SINGLE_CELL_MAX,
    FreeDescriptor,
    RecvDescriptor,
    SendDescriptor,
)
from repro.core.endpoint import Channel, Endpoint

KERNEL_OWNER = "<kernel>"


class EmulatedUNet:
    """Per-host kernel service multiplexing emulated endpoints onto one
    real endpoint."""

    #: Fixed-size kernel buffers in the real endpoint's segment.
    KERNEL_BUFFER = 4160

    def __init__(self, agent, segment_size: int = 256 * 1024, kernel_buffers: int = 24):
        self.agent = agent
        self.host = agent.host
        self.sim = agent.host.sim
        self.real: Endpoint = agent.create_endpoint(
            owner=KERNEL_OWNER,
            name=f"{self.host.name}.kernel-ep",
            segment_size=segment_size,
            send_ring=128,
            recv_ring=128,
            free_ring=64,
        )
        self.emulated: list = []
        self._emu_to_real: Dict[int, Channel] = {}
        self._real_to_emu: Dict[int, Tuple[Endpoint, Channel]] = {}
        self.forwarded_in = 0
        self.forwarded_out = 0
        self.unmatched = 0
        # Stock the real endpoint's free queue with kernel buffers.
        for _ in range(kernel_buffers):
            offset = self.real.segment.alloc(self.KERNEL_BUFFER)
            self.real.post_free(
                FreeDescriptor(offset, self.KERNEL_BUFFER), KERNEL_OWNER
            )
        self.sim.process(self._recv_service(), name=f"{self.host.name}.kemu.rx")

    # -- endpoint lifecycle -------------------------------------------------
    def create_endpoint(self, owner: str, name: str = "", **ring_kwargs) -> Endpoint:
        endpoint = Endpoint(
            self.sim,
            name=name or f"{self.host.name}.emu{len(self.emulated)}",
            owner=owner,
            emulated=True,
            **ring_kwargs,
        )
        self.emulated.append(endpoint)
        self.sim.process(
            self._send_service(endpoint), name=f"{self.host.name}.kemu.tx"
        )
        return endpoint

    def install_channel(
        self, endpoint: Endpoint, tx_vci: int, rx_vci: int, peer_host: str
    ) -> Channel:
        """Install the real channel on the kernel endpoint and hand the
        application a virtual channel on its emulated endpoint."""
        real_ch = Channel(
            ident=self.agent.allocate_channel_id(),
            endpoint=self.real,
            tx_vci=tx_vci,
            rx_vci=rx_vci,
            peer_host=peer_host,
        )
        self.agent.ni.mux.register(real_ch)
        self.real.channels[real_ch.ident] = real_ch
        emu_ch = Channel(
            ident=self.agent.allocate_channel_id(),
            endpoint=endpoint,
            tx_vci=tx_vci,
            rx_vci=rx_vci,
            peer_host=peer_host,
        )
        endpoint.channels[emu_ch.ident] = emu_ch
        self._emu_to_real[emu_ch.ident] = real_ch
        self._real_to_emu[real_ch.ident] = (endpoint, emu_ch)
        return emu_ch

    def close_channel(self, emu_channel: Channel) -> None:
        real_ch = self._emu_to_real.pop(emu_channel.ident)
        del self._real_to_emu[real_ch.ident]
        emu_channel.open = False
        real_ch.open = False
        self.agent.ni.mux.unregister(real_ch)

    # -- kernel send path ------------------------------------------------------
    def _send_service(self, emu: Endpoint):
        host = self.host
        while not emu.destroyed:
            yield emu.send_queue.wait_nonempty()
            if emu.destroyed:
                return
            desc = emu.send_queue.pop()
            if desc is None:
                continue
            real_ch = self._emu_to_real.get(desc.channel)
            if real_ch is None or not real_ch.open:
                self.unmatched += 1
                continue
            # System call into the kernel, then copy user -> kernel.
            yield from host.syscall()
            if desc.inline is not None:
                payload = desc.inline
            else:
                payload = b"".join(
                    emu.segment.read(off, ln) for off, ln in desc.bufs
                )
            if len(payload) <= SINGLE_CELL_MAX:
                fwd = SendDescriptor(channel=real_ch.ident, inline=payload)
                yield from self._post_real(fwd)
            else:
                offset = self.real.segment.alloc(len(payload))
                try:
                    yield from host.copy(len(payload))
                    self.real.segment.write(offset, payload)
                    fwd = SendDescriptor(
                        channel=real_ch.ident, bufs=((offset, len(payload)),)
                    )
                    yield from self._post_real(fwd)
                    yield self.real.wait_send_complete(fwd)
                except Exception:
                    # forwarding failed mid-flight: return the kernel
                    # bounce buffer instead of leaking it
                    self.real.segment.free(offset, len(payload))
                    raise
                self.real.segment.free(offset, len(payload))
            desc.injected = True
            if desc.completion is not None and not desc.completion.triggered:
                desc.completion.succeed()
            emu.messages_sent += 1
            self.forwarded_out += 1

    def _post_real(self, descriptor: SendDescriptor):
        while not self.real.post_send(descriptor, KERNEL_OWNER):
            yield self.real.send_queue.wait_space()

    # -- kernel receive path -----------------------------------------------------
    def _recv_service(self):
        host = self.host
        while True:
            yield self.real.recv_queue.wait_nonempty()
            desc = self.real.recv_poll(KERNEL_OWNER)
            if desc is None:
                continue
            target = self._real_to_emu.get(desc.channel)
            if target is None:
                self.unmatched += 1
                self._recycle(desc)
                continue
            emu, emu_ch = target
            # Kernel -> user crossing and copy into the user's segment.
            yield from host.syscall()
            if desc.is_inline:
                payload = desc.inline
            else:
                payload = b"".join(
                    self.real.segment.read(off, used) for off, used in desc.bufs
                )
            if len(payload) <= SINGLE_CELL_MAX:
                emu.deliver(
                    RecvDescriptor(
                        channel=emu_ch.ident, length=len(payload), inline=payload
                    )
                )
            else:
                yield from host.copy(len(payload))
                self._deliver_buffered(emu, emu_ch, payload)
            self._recycle(desc)
            self.forwarded_in += 1

    def _deliver_buffered(self, emu: Endpoint, emu_ch: Channel, payload: bytes):
        remaining, cursor, used, popped = len(payload), 0, [], []
        while remaining > 0:
            free = emu.free_queue.pop()
            if free is None:
                emu.no_buffer_drops += 1
                for fd in popped:
                    emu.free_queue.push(fd)
                return
            popped.append(free)
            take = min(free.length, remaining)
            emu.segment.write(free.offset, payload[cursor : cursor + take])
            # The scatter list itself is the product of this helper.
            used.append((free.offset, take))  # simcost: disable=cost-alloc
            cursor += take
            remaining -= take
        ok = emu.deliver(
            RecvDescriptor(channel=emu_ch.ident, length=len(payload), bufs=tuple(used))
        )
        if not ok:
            for fd in popped:
                emu.free_queue.push(fd)

    def _recycle(self, desc: RecvDescriptor) -> None:
        if not desc.is_inline:
            for offset, _used in desc.bufs:
                # Re-posting a free descriptor per buffer is the modelled
                # kernel behaviour (descriptors are owned by the queue).
                self.real.post_free(
                    FreeDescriptor(offset, self.KERNEL_BUFFER), KERNEL_OWNER  # simcost: disable=cost-alloc
                )
