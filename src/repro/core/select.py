"""Blocking multi-endpoint wait -- the §3.1 select() receive model.

"The receive model supported by U-Net is either polling or event
driven: the process can periodically check the status of the receive
queue, it can block waiting for the next message to arrive (using a
UNIX select call), or it can register an upcall."

:func:`select_recv` blocks a process until at least one of its
endpoints has a pending message (or the timeout expires), charging the
select()-wakeup cost once -- a single kernel crossing no matter how
many endpoints are watched.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.api import UNetSession
from repro.sim import AnyOf


def select_recv(
    sessions: Sequence[UNetSession],
    timeout_us: Optional[float] = None,
) -> "generator":
    """Generator: wait until any session has a receivable message.

    Returns the list of ready sessions (empty on timeout).  All sessions
    must belong to the same process on the same host (as with select()
    on a set of that process's file descriptors).
    """
    if not sessions:
        raise ValueError("select_recv needs at least one session")
    host = sessions[0].host
    caller = sessions[0].caller
    for session in sessions[1:]:
        if session.host is not host:
            raise ValueError("select_recv sessions must share one host")
        if session.caller != caller:
            raise ValueError("select_recv sessions must share one process")

    def ready() -> List[UNetSession]:
        return [s for s in sessions if not s.endpoint.recv_queue.is_empty]

    sim = host.sim
    hits = ready()
    if not hits:
        events = [s.endpoint.wait_recv(caller) for s in sessions]
        if timeout_us is not None:
            events.append(sim.timeout(timeout_us))
        yield AnyOf(sim, events)
        hits = ready()
    # one kernel crossing to wake the blocked process
    yield from host.compute(host.costs.select_wakeup_us)
    return hits
