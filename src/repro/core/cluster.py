"""Testbed assembly: hosts + switch + NIs + kernel agents + directory.

:meth:`UNetCluster.paper_testbed` reproduces the §4.2 experimental
set-up: five 60 MHz SPARCstation-20s and three 50 MHz SPARCstation-10s
on a Fore ASX-200 switch with 140 Mbit/s TAXI fibers.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

from repro.atm.link import TAXI_140_BPS
from repro.atm.network import AtmNetwork
from repro.core.api import UNetSession
from repro.core.endpoint import Channel, Endpoint
from repro.core.kernel_agent import ClusterDirectory, KernelAgent, ResourceLimits
from repro.core.ni.costs import ForeCosts, Sba100Costs, Sba200Costs
from repro.host import Workstation
from repro.sim import Simulator, Tracer


class UNetCluster:
    """A ready-to-use ATM cluster running U-Net."""

    def __init__(
        self,
        sim: Simulator,
        host_specs: Sequence[Tuple[str, float]],
        ni_kind: str = "sba200",
        bandwidth_bps: float = TAXI_140_BPS,
        limits: Optional[ResourceLimits] = None,
        tracer: Optional[Tracer] = None,
        ni_costs=None,
    ):
        # NI classes are imported lazily to avoid circular imports.
        from repro.core.direct import DirectAccessNI
        from repro.core.ni.fore import ForeFirmwareNI
        from repro.core.ni.sba100 import Sba100UNet
        from repro.core.ni.sba200 import Sba200UNet

        ni_factories = {
            "sba200": (Sba200UNet, Sba200Costs),
            "sba100": (Sba100UNet, Sba100Costs),
            "fore": (ForeFirmwareNI, ForeCosts),
            "direct": (DirectAccessNI, Sba200Costs),
        }
        if ni_kind not in ni_factories:
            raise ValueError(f"unknown NI kind {ni_kind!r}")
        ni_cls, default_costs = ni_factories[ni_kind]

        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer()
        self.network = AtmNetwork(
            sim, n_ports=len(host_specs), bandwidth_bps=bandwidth_bps,
            tracer=self.tracer,
        )
        self.hosts: Dict[str, Workstation] = {}
        self.agents: Dict[str, KernelAgent] = {}
        self.directory = ClusterDirectory(self.network)
        # On a sharded simulator each host's stack is built inside its
        # shard scope, so any event the NI or agent schedules during
        # construction starts on the host's own timeline (attribution
        # only; correctness never depends on it — DESIGN.md §8).
        shard_scope = getattr(sim, "shard_scope", None)
        for name, mhz in host_specs:
            port = self.network.attach(name)
            scope = (
                shard_scope(port.shard)
                if shard_scope is not None
                else nullcontext()
            )
            with scope:
                host = Workstation(sim, name, mhz=mhz, tracer=self.tracer)
                ni = ni_cls(
                    host, port, costs=ni_costs or default_costs(),
                    tracer=self.tracer,
                )
                agent = KernelAgent(host, ni, limits=limits, tracer=self.tracer)
            self.directory.register_agent(agent)
            self.hosts[name] = host
            self.agents[name] = agent

    @classmethod
    def paper_testbed(cls, sim: Simulator, **kwargs) -> "UNetCluster":
        """The eight-node cluster of §4.2."""
        specs = [(f"ss20-{i}", 60.0) for i in range(5)]
        specs += [(f"ss10-{i}", 50.0) for i in range(3)]
        return cls(sim, specs, **kwargs)

    @classmethod
    def pair(
        cls, sim: Simulator, mhz: float = 60.0, ni_kind: str = "sba200", **kwargs
    ) -> "UNetCluster":
        """Two identical hosts -- the micro-benchmark configuration."""
        return cls(sim, [("alice", mhz), ("bob", mhz)], ni_kind=ni_kind, **kwargs)

    @property
    def host_names(self) -> List[str]:
        return list(self.hosts)

    def host(self, name: str) -> Workstation:
        return self.hosts[name]

    def agent(self, name: str) -> KernelAgent:
        return self.agents[name]

    def open_session(
        self, host_name: str, owner: str, **endpoint_kwargs
    ) -> UNetSession:
        """Create an endpoint on ``host_name`` and wrap it in a session."""
        agent = self.agents[host_name]
        endpoint = agent.create_endpoint(owner=owner, **endpoint_kwargs)
        return UNetSession(self.hosts[host_name], endpoint, owner)

    def connect_sessions(
        self, a: UNetSession, b: UNetSession, service: str = ""
    ) -> Tuple[Channel, Channel]:
        """Wire two sessions together with a full-duplex channel."""
        service = service or f"svc-{id(b.endpoint):x}"
        self.directory.advertise(service, b.endpoint, b.caller)
        channels = self.directory.connect(a.endpoint, service, a.caller)
        self.directory.withdraw(service, b.caller)
        return channels
