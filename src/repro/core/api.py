"""User-level convenience layer over the raw U-Net primitives.

The architecture's primitives are deliberately low-level (descriptor
rings and segment offsets).  :class:`UNetSession` is the thin user
library each process links against: it charges the host-side costs
(descriptor stores, polls, copies) on the owning host's CPU and offers
blocking helpers.  All protocol layers in this repository (UAM, UDP,
TCP) are written against this class, demonstrating the paper's claim
that the interface supports both legacy protocols and novel
abstractions.

Every method that advances simulated time is a generator meant to be
``yield from``-ed inside a simulated process.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro import obs
from repro.core.descriptors import (
    SINGLE_CELL_MAX,
    FreeDescriptor,
    RecvDescriptor,
    SendDescriptor,
)
from repro.core.endpoint import Endpoint
from repro.core.errors import QueueFullError
from repro.host import Workstation


class UNetSession:
    """One process's handle on one endpoint."""

    def __init__(self, host: Workstation, endpoint: Endpoint, caller: str):
        endpoint.check_owner(caller)
        self.host = host
        self.endpoint = endpoint
        self.caller = caller
        ni_costs = host.ni.costs if host.ni is not None else None
        self._post_send_us = getattr(ni_costs, "host_post_send_us", 1.0)
        self._recv_us = getattr(ni_costs, "host_recv_us", 1.5)
        self._post_free_us = getattr(ni_costs, "host_post_free_us", 0.8)
        self._free_buffer_size = 4160

    @property
    def host_recv_cost_us(self) -> float:
        """Host-side cost of popping one receive descriptor (for layers
        that poll with ``recv_poll`` and charge the cost themselves)."""
        return self._recv_us

    # -- segment management (process-managed, §3.4) ------------------------
    def alloc(self, length: int) -> int:
        return self.endpoint.segment.alloc(length)

    def free(self, offset: int, length: int) -> None:
        self.endpoint.segment.free(offset, length)

    def write_segment(self, offset: int, data: bytes):
        """Copy application data into the communication segment."""
        self.endpoint.segment.write(offset, data)
        _o = obs.active
        _sp = (
            _o.begin(self.host.sim.now, "copy_in", "host", host=self.host.name)
            if _o is not None
            else None
        )
        yield from self.host.copy(len(data))
        if _sp is not None:
            _o.annotate(_sp, bytes=len(data))
            _o.end(_sp, self.host.sim.now)

    def read_segment(self, offset: int, length: int):
        """Copy message data out of the segment into application memory."""
        data = self.endpoint.segment.read(offset, length)
        _o = obs.active
        _sp = (
            _o.begin(self.host.sim.now, "copy_out", "host", host=self.host.name)
            if _o is not None
            else None
        )
        yield from self.host.copy(length)
        if _sp is not None:
            _o.annotate(_sp, bytes=length)
            _o.end(_sp, self.host.sim.now)
        return data

    def peek_segment(self, offset: int, length: int) -> bytes:
        """Inspect message data *in place* -- the true-zero-copy case of
        §3.4 (e.g. reading an acknowledgment without copying it out)."""
        return self.endpoint.segment.read(offset, length)

    # -- send ---------------------------------------------------------------
    def make_descriptor(
        self, channel: int, data: Optional[bytes] = None,
        bufs: Tuple[Tuple[int, int], ...] = (),
    ) -> SendDescriptor:
        """Build a send descriptor; small payloads ride inline (§3.4)."""
        if data is not None:
            if len(data) > SINGLE_CELL_MAX:
                raise ValueError(
                    f"inline payload limited to {SINGLE_CELL_MAX} bytes; "
                    "compose larger messages in the segment"
                )
            return SendDescriptor(channel=channel, inline=data)
        return SendDescriptor(channel=channel, bufs=tuple(bufs))

    def post_send(self, descriptor: SendDescriptor):
        """Push a descriptor; returns False on back-pressure."""
        _o = obs.active
        _sp = (
            _o.begin(self.host.sim.now, "post_send", "host", host=self.host.name)
            if _o is not None
            else None
        )
        yield from self.host.compute(self._post_send_us)
        ok = self.endpoint.post_send(descriptor, self.caller)
        if _sp is not None:
            _o.end(_sp, self.host.sim.now)
        return ok

    def send(self, descriptor: SendDescriptor):
        """Push a descriptor, waiting out back-pressure (§3.1)."""
        while True:
            ok = yield from self.post_send(descriptor)
            if ok:
                return
            yield self.endpoint.send_queue.wait_space()

    def send_copy(self, channel: int, data: bytes, tx_offset: Optional[int] = None):
        """Convenience: copy ``data`` into the segment (unless it fits a
        descriptor inline) and send it.  Returns the descriptor.

        When ``tx_offset`` is None a transient buffer is allocated and
        freed after injection.
        """
        if len(data) <= SINGLE_CELL_MAX:
            desc = self.make_descriptor(channel, data=data)
            yield from self.send(desc)
            return desc
        transient = tx_offset is None
        offset = self.alloc(len(data)) if transient else tx_offset
        try:
            yield from self.write_segment(offset, data)
            desc = self.make_descriptor(channel, bufs=((offset, len(data)),))
            yield from self.send(desc)
            if transient:
                yield self.endpoint.wait_send_complete(desc)
        except Exception:
            if transient:
                # the transient buffer is invisible to the caller; it
                # must not outlive the failed send
                self.free(offset, len(data))
            raise
        if transient:
            self.free(offset, len(data))
        return desc

    # -- receive --------------------------------------------------------------
    def provide_receive_buffers(self, count: int, size: int = 4160):
        """Allocate ``count`` buffers of ``size`` bytes and post them on the
        free queue (the UAM layer uses 4160-byte buffers, §5.2)."""
        self._free_buffer_size = size
        offsets = []
        for _ in range(count):
            offset = self.alloc(size)
            yield from self.host.compute(self._post_free_us)
            if not self.endpoint.post_free(FreeDescriptor(offset, size), self.caller):
                self.free(offset, size)
                raise QueueFullError("free queue is full")
            offsets.append(offset)
        return offsets

    def repost_free(self, descriptor: RecvDescriptor):
        """Recycle a consumed message's buffers back onto the free queue."""
        if descriptor.is_inline:
            return
        _o = obs.active
        _sp = (
            _o.begin(self.host.sim.now, "post_free", "host", host=self.host.name)
            if _o is not None
            else None
        )
        for offset, _used in descriptor.bufs:
            yield from self.host.compute(self._post_free_us)
            # Buffers keep their allocated size; we re-post the original
            # fixed size used when providing them.
            self.endpoint.post_free(
                FreeDescriptor(offset, self._buffer_size_of(descriptor)), self.caller
            )
        if _sp is not None:
            _o.end(_sp, self.host.sim.now)

    def _buffer_size_of(self, descriptor: RecvDescriptor) -> int:
        # All free buffers a session provides share one size; remember it.
        return self._free_buffer_size

    def recv_poll(self) -> Optional[RecvDescriptor]:
        """Non-blocking receive-queue check (the polling model)."""
        return self.endpoint.recv_poll(self.caller)

    def recv(self):
        """Blocking receive: wait for a message, then pop it."""
        while True:
            desc = self.endpoint.recv_poll(self.caller)
            if desc is not None:
                _o = obs.active
                _sp = (
                    _o.begin(self.host.sim.now, "recv", "host", host=self.host.name)
                    if _o is not None
                    else None
                )
                yield from self.host.compute(self._recv_us)
                if _sp is not None:
                    _o.end(_sp, self.host.sim.now)
                return desc
            yield self.endpoint.wait_recv(self.caller)

    def recv_payload(self, descriptor: RecvDescriptor):
        """Copy a received message out into application memory."""
        if descriptor.is_inline:
            # Data sits in the descriptor itself; reading it is free of
            # buffer management but still a (tiny) copy.
            yield from self.host.copy(len(descriptor.inline))
            return descriptor.inline
        parts: List[bytes] = []
        for offset, used in descriptor.bufs:
            parts.append(self.endpoint.segment.read(offset, used))
        yield from self.host.copy(descriptor.length)
        return b"".join(parts)

    def peek_payload(self, descriptor: RecvDescriptor) -> bytes:
        """Read a received message in place (no copy charged) -- §3.4's
        true zero copy for data that needs no long-term storage."""
        if descriptor.is_inline:
            return descriptor.inline
        return b"".join(
            self.endpoint.segment.read(offset, used)
            for offset, used in descriptor.bufs
        )
