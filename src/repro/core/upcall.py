"""Upcall dispatch: the event-driven receive model of §3.1.

U-Net does not specify the nature of the upcall; this implementation
offers the UNIX-signal flavour the paper measured (which "adds
approximately another 30 us on each end", §4.2.3).  Two conditions are
supported, exactly as in the paper: *receive queue non-empty* and
*receive queue almost full*.  Upcalls respect the endpoint's
disable/enable critical sections, and a single upcall sees every
pending message (handlers should drain the queue).
"""

from __future__ import annotations

import enum
from typing import Callable, Generator

from repro.core.endpoint import Endpoint
from repro.host import Workstation
from repro.sim import Process


class UpcallCondition(enum.Enum):
    RECV_NONEMPTY = "recv_nonempty"
    RECV_ALMOST_FULL = "recv_almost_full"


class UpcallRegistration:
    """A live upcall subscription; cancel() to deregister."""

    def __init__(
        self,
        host: Workstation,
        endpoint: Endpoint,
        condition: UpcallCondition,
        handler: Callable[[Endpoint], Generator],
        signal_cost: bool = True,
    ):
        self.host = host
        self.endpoint = endpoint
        self.condition = condition
        self.handler = handler
        self.signal_cost = signal_cost
        self.cancelled = False
        self.invocations = 0
        self._process: Process = host.sim.process(
            self._loop(), name=f"upcall.{endpoint.name}.{condition.value}"
        )

    def cancel(self) -> None:
        self.cancelled = True
        if self._process.is_alive:
            self._process.interrupt("upcall cancelled")

    def _wait_condition(self):
        if self.condition is UpcallCondition.RECV_NONEMPTY:
            return self.endpoint.recv_queue.wait_nonempty()
        return self.endpoint.recv_queue.wait_almost_full()

    def _loop(self):
        from repro.sim import Interrupt

        sim = self.host.sim
        try:
            while not self.cancelled:
                yield self._wait_condition()
                if self.cancelled:
                    return
                # Critical sections: hold the upcall until re-enabled.
                while not self.endpoint.upcalls_enabled:
                    yield self.endpoint.wait_upcalls_enabled()
                if self.endpoint.recv_queue.is_empty:
                    continue  # a poller consumed the messages first
                if self.signal_cost:
                    # UNIX signal delivery before the handler runs.
                    yield from self.host.signal_delivery()
                self.invocations += 1
                yield from self.handler(self.endpoint)
                # Re-arm: loop back and wait for the next batch.
        except Interrupt:
            return


def register_upcall(
    host: Workstation,
    endpoint: Endpoint,
    handler: Callable[[Endpoint], Generator],
    condition: UpcallCondition = UpcallCondition.RECV_NONEMPTY,
    caller: str = "",
    signal_cost: bool = True,
) -> UpcallRegistration:
    """Register ``handler`` to run when ``condition`` holds.

    ``handler(endpoint)`` must be a generator (it may yield sim events,
    e.g. CPU costs for processing each message) and should consume all
    pending messages via ``endpoint.recv_drain``.
    """
    endpoint.check_owner(caller or endpoint.owner)
    return UpcallRegistration(host, endpoint, condition, handler, signal_cost)
