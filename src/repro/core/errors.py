"""Errors raised by the U-Net architecture layers."""

from __future__ import annotations


class UNetError(Exception):
    """Base class for all U-Net architecture errors."""


class ProtectionError(UNetError):
    """A process touched an endpoint, segment, or channel it does not own,
    or presented an unregistered tag.  (Paper §3.2: protection boundaries.)
    """


class ResourceLimitError(UNetError):
    """Endpoint/segment creation exceeded kernel-enforced resource limits
    (pinned memory, DMA space, NI memory -- paper §4.2.4)."""


class ChannelError(UNetError):
    """Channel setup/teardown failure (no route, authentication denied,
    unknown destination)."""


class SegmentRangeError(UNetError, IndexError):
    """An access fell outside the communication segment or a buffer."""


class SegmentOwnershipError(SegmentRangeError):
    """A buffer operation violated segment ownership: double free, free
    of a never-allocated or overlapping region, a use-after-free write,
    or a leak at teardown.  §3.1/§3.4 push buffer management into user
    code; this error is the architecture catching user code cheating.
    """


class QueueFullError(UNetError):
    """A descriptor ring was full (back-pressure, paper §3.1)."""


class QueueInvariantError(UNetError):
    """A descriptor ring broke an internal invariant: occupancy above
    capacity, or a descriptor recycled onto the ring before the
    consumer popped it (detected by the REPRO_SANITIZE=1 sanitizer)."""
