"""Errors raised by the U-Net architecture layers."""

from __future__ import annotations


class UNetError(Exception):
    """Base class for all U-Net architecture errors."""


class ProtectionError(UNetError):
    """A process touched an endpoint, segment, or channel it does not own,
    or presented an unregistered tag.  (Paper §3.2: protection boundaries.)
    """


class ResourceLimitError(UNetError):
    """Endpoint/segment creation exceeded kernel-enforced resource limits
    (pinned memory, DMA space, NI memory -- paper §4.2.4)."""


class ChannelError(UNetError):
    """Channel setup/teardown failure (no route, authentication denied,
    unknown destination)."""


class SegmentRangeError(UNetError, IndexError):
    """An access fell outside the communication segment or a buffer."""


class QueueFullError(UNetError):
    """A descriptor ring was full (back-pressure, paper §3.1)."""
