"""The message multiplex/demultiplex agent (§2.4, §3.2).

The mux is the one component that must sit in the data path: on receive
it maps the message tag (the ATM VCI here) to the destination endpoint
and channel; on send it validates that the channel's tag was registered
by the kernel.  Registration is kernel-only -- applications never touch
the mux directly, which is what makes the protection model work.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.endpoint import Channel
from repro.core.errors import ChannelError


class Mux:
    """Per-NI tag table: rx VCI -> channel (and thus endpoint)."""

    def __init__(self, name: str = "mux"):
        self.name = name
        self._by_rx_vci: Dict[int, Channel] = {}
        self.unmatched = 0  # incoming messages with no registered tag

    def register(self, channel: Channel) -> None:
        """Kernel-only: install a channel's receive tag."""
        if channel.rx_vci in self._by_rx_vci:
            raise ChannelError(
                f"rx VCI {channel.rx_vci} already registered on {self.name}"
            )
        self._by_rx_vci[channel.rx_vci] = channel

    def unregister(self, channel: Channel) -> None:
        existing = self._by_rx_vci.get(channel.rx_vci)
        if existing is not channel:
            raise ChannelError(
                f"rx VCI {channel.rx_vci} is not registered to this channel"
            )
        del self._by_rx_vci[channel.rx_vci]

    def demux(self, rx_vci: int) -> Optional[Channel]:
        """Map an incoming tag to its channel; None counts as unmatched."""
        channel = self._by_rx_vci.get(rx_vci)
        if channel is None:
            self.unmatched += 1
        return channel

    def __contains__(self, rx_vci: int) -> bool:
        return rx_vci in self._by_rx_vci

    def __len__(self) -> int:
        return len(self._by_rx_vci)
