"""Message descriptors carried in the send/receive/free queues (§3.1, §3.4).

Send descriptors name a destination channel and a scatter-gather list of
buffers in the communication segment.  Receive descriptors name the
origin channel and the buffers the NI filled.  As the small-message
optimization of §3.4, descriptors can instead carry the message bytes
*inline*, avoiding buffer management entirely; the inline capacity is an
implementation property of the NI (40 bytes for the SBA-200 firmware:
the largest message that still fits a single cell with the AAL5
trailer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Largest message that fits one ATM cell alongside the 8-byte AAL5
#: trailer; the paper's single-cell fast path (§4.2.2, §8: "messages
#: smaller than 40 bytes").
SINGLE_CELL_MAX = 40


@dataclass
class SendDescriptor:
    """A message the process wants injected into the network."""

    channel: int
    #: Scatter-gather list of (offset, length) into the comm segment.
    bufs: Tuple[Tuple[int, int], ...] = ()
    #: Small-message optimization: payload stored inline in the descriptor.
    inline: Optional[bytes] = None
    #: Set by the NI once the message has been injected; signals to the
    #: process that the send buffers may be reused (§3.1).
    injected: bool = False
    #: Optional event the NI triggers when it sets ``injected``.
    completion: Optional[object] = None

    def __post_init__(self) -> None:
        if self.inline is not None and self.bufs:
            raise ValueError("descriptor cannot carry both inline data and buffers")
        if self.inline is not None and len(self.inline) > SINGLE_CELL_MAX:
            raise ValueError(
                f"inline data limited to {SINGLE_CELL_MAX} bytes, got {len(self.inline)}"
            )
        for offset, length in self.bufs:
            if offset < 0 or length <= 0:
                raise ValueError(f"bad buffer ({offset}, {length})")

    @property
    def length(self) -> int:
        if self.inline is not None:
            return len(self.inline)
        return sum(length for _, length in self.bufs)


@dataclass
class RecvDescriptor:
    """A message the NI delivered to this endpoint."""

    channel: int
    length: int
    bufs: Tuple[Tuple[int, int], ...] = ()
    inline: Optional[bytes] = None

    @property
    def is_inline(self) -> bool:
        return self.inline is not None


@dataclass
class FreeDescriptor:
    """A receive buffer the process hands to the NI (free queue, §3.4)."""

    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise ValueError(f"bad free buffer ({self.offset}, {self.length})")
