"""Classic 10 Mbit/s Ethernet -- the Figure 6 latency baseline.

Frame-level model: one shared medium serializing frames at 10 Mbit/s
with the standard 14-byte header, 4-byte FCS, 8-byte preamble, and the
9.6 us inter-frame gap.  Two (or more) hosts attach; frames carry IP
datagrams between them.  No collisions are modelled (the benchmarks run
two quiet hosts, where CSMA/CD rarely backs off).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim import Simulator, Store, Tracer

ETHERNET_BPS = 10_000_000.0
ETHERNET_MTU = 1500
FRAME_OVERHEAD = 14 + 4 + 8  # header + FCS + preamble
INTERFRAME_GAP_US = 9.6


class EthernetFrame:
    __slots__ = ("src", "dst", "payload")

    def __init__(self, src: int, dst: int, payload: bytes):
        if len(payload) > ETHERNET_MTU:
            raise ValueError(f"frame payload {len(payload)} exceeds Ethernet MTU")
        self.src = src
        self.dst = dst
        self.payload = payload

    @property
    def wire_bytes(self) -> int:
        # minimum frame size of 64 bytes (without preamble)
        return max(64, len(self.payload) + 18) + 8


class EthernetPort:
    def __init__(self, lan: "EthernetLan", address: int):
        self.lan = lan
        self.address = address
        self._sink: Optional[Callable[[EthernetFrame], None]] = None

    def set_rx_sink(self, sink: Callable[[EthernetFrame], None]) -> None:
        self._sink = sink

    def send_frame(self, dst: int, payload: bytes) -> None:
        self.lan._transmit(EthernetFrame(self.address, dst, payload))

    def _deliver(self, frame: EthernetFrame) -> None:
        if self._sink is not None:
            self._sink(frame)


class EthernetLan:
    """A shared 10 Mbit/s segment."""

    def __init__(self, sim: Simulator, tracer: Optional[Tracer] = None):
        self.sim = sim
        self.tracer = tracer if tracer is not None else Tracer()
        self._ports: Dict[int, EthernetPort] = {}
        self._medium = Store(sim, name="ether.medium")
        self.frames_sent = 0
        self.bytes_sent = 0
        sim.process(self._pump(), name="ether.pump")

    def attach(self, address: int) -> EthernetPort:
        if address in self._ports:
            raise ValueError(f"ethernet address {address} already in use")
        port = EthernetPort(self, address)
        self._ports[address] = port
        return port

    def _transmit(self, frame: EthernetFrame) -> None:
        self._medium.try_put(frame)

    def _pump(self):
        while True:
            frame = yield self._medium.get()
            # the shared medium serializes every frame
            yield self.sim.timeout(frame.wire_bytes * 8 / ETHERNET_BPS * 1e6)
            self.frames_sent += 1
            self.bytes_sent += frame.wire_bytes
            target = self._ports.get(frame.dst)
            if target is not None:
                target._deliver(frame)
            yield self.sim.timeout(INTERFRAME_GAP_US)
