"""The in-kernel BSD networking path -- the baseline U-Net beats (§7).

Everything the paper blames is here:

* every send/receive crosses the kernel (system call + socket layer),
* packet data lives in mbuf chains -- 1 KB clusters plus, for
  remainders under 512 bytes, chains of 112-byte small mbufs with no
  reference counts (the Figure 7 saw-tooth),
* the socket receive buffer is capped at 52 KB; overruns silently drop
  packets (§7.3),
* the device output queue "will drop random packets ... if there is
  overload without notifying the sending application" (§7.4),
* the Fore ATM driver + vendor firmware are expensive per packet,
* protocol timers tick at the BSD 500 ms granularity (§7.8),
* delayed acks are on.

The TCP/UDP *protocol code* is the same as the U-Net stack's -- the
difference is purely the execution environment (§7.2).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from repro import obs
from repro.core import SendDescriptor, UNetSession
from repro.host import Workstation
from repro.ip.ethernet import ETHERNET_MTU, EthernetPort
from repro.ip.headers import (
    IP_HEADER_SIZE,
    PROTO_TCP,
    PROTO_UDP,
    IpDatagram,
    TcpSegment,
    UdpPacket,
)
from repro.ip.mbuf import mbuf_chain_for
from repro.ip.tcp import TcpConfig, TcpConnection
from repro.sim import Event, Store


@dataclass
class KernelCosts:
    """SunOS 4.1.3 path costs at the 60 MHz reference clock, sized to
    put small-message kernel RTTs near a millisecond -- an order of
    magnitude over U-Net, as Figures 6 and 9 show."""

    sosend_us: float = 45.0
    soreceive_us: float = 40.0
    udp_out_us: float = 35.0
    udp_in_us: float = 35.0
    tcp_out_us: float = 60.0
    tcp_in_us: float = 55.0
    ip_us: float = 20.0
    #: handling cost per cluster mbuf in a chain
    mbuf_cluster_us: float = 6.0
    #: handling cost per 112-byte small mbuf (copied: no refcounts)
    mbuf_small_us: float = 25.0
    #: Fore driver per-packet costs (kernel side of the vendor firmware)
    fore_tx_us: float = 120.0
    fore_rx_us: float = 170.0
    #: Lance Ethernet driver per-packet costs
    eth_tx_us: float = 100.0
    eth_rx_us: float = 110.0
    #: process wakeup when data reaches a blocked socket
    wakeup_us: float = 25.0
    #: "the restricted size of the socket receive buffer (max. 52Kbytes
    #: in SunOS)" (§7.3)
    sockbuf_bytes: int = 52 * 1024
    #: device output queue length in packets (BSD ifq_maxlen)
    devq_packets: int = 46


class AtmKernelDevice:
    """The Fore ATM interface as the kernel sees it: a bounded output
    queue in front of the vendor firmware NI (point-to-point channel)."""

    #: Classical-IP-over-ATM MTU: the largest IP datagram the device takes.
    mtu = 9180

    def __init__(self, session: UNetSession, channel_id: int, costs: KernelCosts):
        self.session = session
        self.host = session.host
        self.sim = session.host.sim
        self.costs = costs
        self.channel_id = channel_id
        self._devq = Store(self.sim, capacity=costs.devq_packets)
        self._rx_cb: Optional[Callable] = None
        self.tx_drops = 0
        self.packets_sent = 0
        self.packets_received = 0
        self._started = False

    def start(self):
        if self._started:
            return
        self._started = True
        yield from self.session.provide_receive_buffers(60, size=4160)
        self.sim.process(self._tx_proc(), name="atmdev.tx")
        self.sim.process(self._rx_proc(), name="atmdev.rx")

    def on_receive(self, callback: Callable) -> None:
        self._rx_cb = callback

    def transmit(self, raw: bytes) -> bool:
        """Enqueue on the device output queue; silently drops when the
        queue overflows (§7.4)."""
        if not self._devq.try_put(raw):
            self.tx_drops += 1
            return False
        return True

    LLC_SNAP = bytes([0xAA, 0xAA, 0x03, 0x00, 0x00, 0x00, 0x08, 0x00])

    def _tx_proc(self):
        while True:
            raw = yield self._devq.get()
            raw = self.LLC_SNAP + raw  # RFC 1577 encapsulation
            _o = obs.active
            _sp = (
                _o.begin(self.sim.now, "k_dev_tx", "kernel", host=self.host.name)
                if _o is not None
                else None
            )
            yield from self.host.cpu.compute(self.costs.fore_tx_us, priority=SPLNET)
            offset = self.session.alloc(len(raw))
            try:
                # the interface DMAs straight out of the mbufs: no extra host
                # copy, only descriptor/DMA setup
                self.session.endpoint.segment.write(offset, raw)
                yield from self.host.cpu.compute(10.0, priority=SPLNET)
                desc = SendDescriptor(
                    channel=self.channel_id, bufs=((offset, len(raw)),)
                )
                yield from self.session.send(desc)
            except Exception:
                # failed before the firmware took ownership: the buffer
                # would otherwise leak out of the device segment
                self.session.free(offset, len(raw))
                raise
            if _sp is not None:
                _o.annotate(_sp, bytes=len(raw))
                _o.end(_sp, self.sim.now)
            # The driver moves on once the descriptor is queued; the
            # buffer is reclaimed when the firmware marks it injected.
            self.sim.process(self._reclaim(desc, offset, len(raw)))
            self.packets_sent += 1

    def _reclaim(self, desc, offset, length):
        yield self.session.endpoint.wait_send_complete(desc)
        self.session.free(offset, length)

    def _rx_proc(self):
        while True:
            desc = yield from self.session.recv()
            _o = obs.active
            _sp = (
                _o.begin(self.sim.now, "k_dev_rx", "kernel", host=self.host.name)
                if _o is not None
                else None
            )
            try:
                raw = self.session.peek_payload(desc)
                if not desc.is_inline:
                    yield from self.session.repost_free(desc)
                yield from self.host.cpu.compute(
                    self.costs.fore_rx_us, priority=SPLNET
                )
                if not raw.startswith(self.LLC_SNAP):
                    continue
                self.packets_received += 1
                if self._rx_cb is not None:
                    yield from self._rx_cb(raw[len(self.LLC_SNAP):])
            finally:
                if _sp is not None:
                    _o.end(_sp, self.sim.now)


class EthernetKernelDevice:
    """Lance Ethernet: cheaper driver, slower wire, device-level
    fragmentation/reassembly for datagrams over the 1500-byte MTU."""

    mtu = 8 * 1024  # what the stack may hand us; we fragment below

    FRAG = 1480

    def __init__(self, host: Workstation, port: EthernetPort, peer: int,
                 costs: KernelCosts):
        self.host = host
        self.sim = host.sim
        self.port = port
        self.peer = peer
        self.costs = costs
        self._devq = Store(self.sim, capacity=costs.devq_packets)
        self._rx_cb: Optional[Callable] = None
        self._partial: Dict[Tuple[int, int], list] = {}
        self._next_id = 0
        self.tx_drops = 0
        self.packets_sent = 0
        self.packets_received = 0
        self._started = False
        port.set_rx_sink(self._frame_sink)
        self._rx_frames = Store(self.sim)

    def start(self):
        if self._started:
            return
        self._started = True
        self.sim.process(self._tx_proc(), name="ethdev.tx")
        self.sim.process(self._rx_proc(), name="ethdev.rx")
        return
        yield  # pragma: no cover

    def on_receive(self, callback: Callable) -> None:
        self._rx_cb = callback

    def transmit(self, raw: bytes) -> bool:
        if not self._devq.try_put(raw):
            self.tx_drops += 1
            return False
        return True

    def _tx_proc(self):
        import struct

        while True:
            raw = yield self._devq.get()
            pkt_id = self._next_id
            self._next_id = (self._next_id + 1) & 0xFFFF
            frags = [raw[i : i + self.FRAG] for i in range(0, len(raw), self.FRAG)] or [b""]
            for idx, frag in enumerate(frags):
                # per-fragment driver cost (fragmentation is why §7.5
                # calls it "a potential source for wasting bandwidth")
                yield from self.host.cpu.compute(self.costs.eth_tx_us, priority=SPLNET)
                header = struct.pack(">HBB", pkt_id, idx, len(frags))
                self.port.send_frame(self.peer, header + frag)
            self.packets_sent += 1

    def _frame_sink(self, frame) -> None:
        self._rx_frames.try_put(frame)

    def _rx_proc(self):
        import struct

        while True:
            frame = yield self._rx_frames.get()
            yield from self.host.cpu.compute(self.costs.eth_rx_us, priority=SPLNET)
            pkt_id, idx, count = struct.unpack(">HBB", frame.payload[:4])
            body = frame.payload[4:]
            key = (frame.src, pkt_id)
            parts = self._partial.setdefault(key, [None] * count)
            parts[idx] = body
            if all(p is not None for p in parts):
                del self._partial[key]
                self.packets_received += 1
                if self._rx_cb is not None:
                    yield from self._rx_cb(b"".join(parts))


#: CPU priority for interrupt-level network processing (splnet): it is
#: served before any queued process-level work, which is exactly how the
#: BSD rx path starves applications under load (§7.3's buffer overruns).
SPLNET = -1


class KernelStack:
    """The in-kernel protocol stack bound to one device."""

    def __init__(self, host: Workstation, device, addr: int,
                 costs: Optional[KernelCosts] = None):
        self.host = host
        self.sim = host.sim
        self.device = device
        self.addr = addr
        self.costs = costs if costs is not None else KernelCosts()
        self._udp_sockets: Dict[int, "KernelUdpSocket"] = {}
        self._tcp_conns: Dict[Tuple[int, int], TcpConnection] = {}
        self._tcp_listeners: Dict[int, TcpConnection] = {}
        self._next_port = 20000
        self.packets_in = 0
        self.bad_packets = 0
        self.sockbuf_drops = 0
        device.on_receive(self._ip_input)

    def start(self):
        yield from self.device.start()

    # ------------------------------------------------------------- output
    def _mbuf_cost(self, size: int, priority: int = 0):
        chain = mbuf_chain_for(size)
        yield from self.host.cpu.compute(
            chain.processing_us(self.costs.mbuf_cluster_us, self.costs.mbuf_small_us),
            priority=priority,
        )

    def ip_output(self, dst: int, proto: int, payload: bytes):
        if IP_HEADER_SIZE + len(payload) > self.device.mtu:
            raise ValueError(
                f"datagram of {len(payload)} bytes exceeds device MTU"
            )
        _o = obs.active
        _sp = (
            _o.begin(self.sim.now, "k_ip_out", "kernel", host=self.host.name)
            if _o is not None
            else None
        )
        yield from self.host.compute(self.costs.ip_us)
        raw = IpDatagram(src=self.addr, dst=dst, proto=proto, payload=payload).encode()
        self.device.transmit(raw)
        if _sp is not None:
            _o.end(_sp, self.sim.now)

    # ------------------------------------------------------------- input
    def _ip_input(self, raw: bytes):
        _o = obs.active
        _sp = (
            _o.begin(self.sim.now, "k_ip_in", "kernel", host=self.host.name)
            if _o is not None
            else None
        )
        try:
            yield from self.host.cpu.compute(self.costs.ip_us, priority=SPLNET)
            self.packets_in += 1
            try:
                dgram = IpDatagram.decode(raw)
            except ValueError:
                self.bad_packets += 1
                return
            if dgram.proto == PROTO_UDP:
                yield from self._udp_input(dgram)
            elif dgram.proto == PROTO_TCP:
                yield from self._tcp_input(dgram)
        finally:
            if _sp is not None:
                _o.end(_sp, self.sim.now)

    def _udp_input(self, dgram: IpDatagram):
        yield from self.host.cpu.compute(self.costs.udp_in_us, priority=SPLNET)
        yield from self._mbuf_cost(len(dgram.payload), priority=SPLNET)
        try:
            packet = UdpPacket.decode(dgram.payload)
        except ValueError:
            self.bad_packets += 1
            return
        sock = self._udp_sockets.get(packet.dst_port)
        if sock is None:
            self.bad_packets += 1
            return
        # §7.3: the bounded socket receive buffer drops on overrun.
        if sock.buffered_bytes + len(packet.payload) > self.costs.sockbuf_bytes:
            self.sockbuf_drops += 1
            sock.drops += 1
            return
        yield from self.host.cpu.compute(self.costs.wakeup_us, priority=SPLNET)
        sock._deliver(dgram.src, packet)

    def _tcp_input(self, dgram: IpDatagram):
        try:
            seg = TcpSegment.decode(dgram.payload)
        except ValueError:
            self.bad_packets += 1
            return
        conn = self._tcp_conns.get((seg.dst_port, seg.src_port))
        if conn is None:
            listener = self._tcp_listeners.get(seg.dst_port)
            if listener is not None:
                listener.dst_port = seg.src_port
                self._tcp_conns[(seg.dst_port, seg.src_port)] = listener
                conn = listener
        if conn is None:
            self.bad_packets += 1
            return
        yield from conn.handle(seg)

    # ------------------------------------------------------------- sockets
    def udp_socket(self, port: Optional[int] = None) -> "KernelUdpSocket":
        if port is None:
            port = self._next_port
            self._next_port += 1
        sock = KernelUdpSocket(self, port)
        self._udp_sockets[port] = sock
        return sock

    def tcp_config(self, **overrides) -> TcpConfig:
        """Kernel TCP defaults: 4 KB segments over ATM, BSD 500 ms
        timers, delayed acks on."""
        defaults = dict(
            # IP-over-ATM MTU is 9180: the kernel negotiates a 9140-byte
            # MSS (§7.8 notes large segments are the kernel's habit and
            # its risk under cell loss).
            mss=9140,
            window=52 * 1024,
            timer_granularity_us=500_000.0,
            delayed_ack=True,
        )
        defaults.update(overrides)
        return TcpConfig(**defaults)

    def tcp_connect(self, peer_addr: int, port: int,
                    local_port: Optional[int] = None,
                    config: Optional[TcpConfig] = None):
        local_port = local_port or self._alloc_port()
        conn = TcpConnection(
            _KernelTcpEnv(self, peer_addr), config or self.tcp_config(),
            src_port=local_port, dst_port=port,
            name=f"ktcp.{self.addr}:{local_port}",
        )
        self._tcp_conns[(local_port, port)] = conn
        yield from conn.connect()
        return conn

    def tcp_listen(self, port: int, peer_addr: int,
                   config: Optional[TcpConfig] = None) -> TcpConnection:
        conn = TcpConnection(
            _KernelTcpEnv(self, peer_addr), config or self.tcp_config(),
            src_port=port, dst_port=0,
            name=f"ktcp.{self.addr}:{port}",
        )
        conn.listen()
        self._tcp_listeners[port] = conn
        return conn

    def _alloc_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port


class KernelUdpSocket:
    """A SunOS UDP socket: syscalls, mbufs, bounded buffers."""

    def __init__(self, stack: KernelStack, port: int):
        self.stack = stack
        self.port = port
        self._queue: Deque[Tuple[int, UdpPacket]] = deque()
        self._waiters = []
        self.buffered_bytes = 0
        self.sent = 0
        self.received = 0
        self.drops = 0

    def sendto(self, data: bytes, dest: Tuple[int, int]):
        peer, port = dest
        host = self.stack.host
        costs = self.stack.costs
        _o = obs.active
        _sp = (
            _o.begin(self.stack.sim.now, "k_sosend", "kernel", host=host.name)
            if _o is not None
            else None
        )
        yield from host.syscall()
        yield from host.compute(costs.sosend_us)
        yield from host.copy(len(data))  # user -> mbuf copy
        yield from self.stack._mbuf_cost(len(data) + 8)
        yield from host.compute(costs.udp_out_us)
        packet = UdpPacket(src_port=self.port, dst_port=port, payload=data)
        yield from self.stack.ip_output(peer, PROTO_UDP, packet.encode())
        self.sent += 1
        if _sp is not None:
            _o.annotate(_sp, bytes=len(data))
            _o.end(_sp, self.stack.sim.now)

    def recvfrom(self):
        host = self.stack.host
        while not self._queue:
            event = Event(self.stack.sim)
            self._waiters.append(event)
            yield event
        src, packet = self._queue.popleft()
        self.buffered_bytes -= len(packet.payload)
        _o = obs.active
        _sp = (
            _o.begin(self.stack.sim.now, "k_soreceive", "kernel", host=host.name)
            if _o is not None
            else None
        )
        yield from host.syscall()
        yield from host.compute(self.stack.costs.soreceive_us)
        yield from host.copy(len(packet.payload))  # mbuf -> user copy
        if _sp is not None:
            _o.annotate(_sp, bytes=len(packet.payload))
            _o.end(_sp, self.stack.sim.now)
        return packet.payload, (src, packet.src_port)

    def _deliver(self, src: int, packet: UdpPacket) -> None:
        self._queue.append((src, packet))
        self.buffered_bytes += len(packet.payload)
        self.received += 1
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()


class _KernelTcpEnv:
    """TCP engine environment for the kernel stack."""

    def __init__(self, stack: KernelStack, peer_addr: int):
        self.stack = stack
        self.peer_addr = peer_addr
        self.sim = stack.sim

    def output_segment(self, seg: TcpSegment):
        host = self.stack.host
        costs = self.stack.costs
        _o = obs.active
        _sp = (
            _o.begin(self.sim.now, "k_tcp_out", "kernel", host=host.name)
            if _o is not None
            else None
        )
        yield from host.compute(costs.tcp_out_us)
        yield from host.copy(len(seg.payload))  # socket buffer -> mbufs
        yield from self.stack._mbuf_cost(len(seg.payload) + 20)
        yield from self.stack.ip_output(self.peer_addr, PROTO_TCP, seg.encode())
        if _sp is not None:
            _o.annotate(_sp, bytes=len(seg.payload))
            _o.end(_sp, self.sim.now)

    def segment_cost_us(self, payload_bytes: int):
        host = self.stack.host
        costs = self.stack.costs
        _o = obs.active
        _sp = (
            _o.begin(self.sim.now, "k_tcp_in", "kernel", host=host.name)
            if _o is not None
            else None
        )
        yield from host.cpu.compute(costs.tcp_in_us, priority=SPLNET)
        yield from self.stack._mbuf_cost(payload_bytes + 20, priority=SPLNET)
        yield from host.cpu.compute(
            host.costs.copy_us(payload_bytes), priority=SPLNET
        )  # mbufs -> socket buffer
        if payload_bytes:
            yield from host.cpu.compute(costs.wakeup_us, priority=SPLNET)
        if _sp is not None:
            _o.annotate(_sp, bytes=payload_bytes)
            _o.end(_sp, self.sim.now)
