"""The BSD mbuf buffering model that dooms the kernel path (§7.3).

SunOS fills 1 Kbyte cluster mbufs with data and, when the remainder is
smaller than 512 bytes, copies it into chains of 112-byte small mbufs.
Small mbufs have no reference-count mechanism (unlike clusters), so
every traversal copies them -- "this allocation method has a strong
degrading effect on the performance of the protocols" and is the cause
of Figure 7's saw-tooth.
"""

from __future__ import annotations

from dataclasses import dataclass

MBUF_SMALL_BYTES = 112
MBUF_CLUSTER_BYTES = 1024
SMALL_REMAINDER_LIMIT = 512


@dataclass(frozen=True)
class MbufChain:
    """The shape of the mbuf chain the kernel builds for one packet."""

    data_bytes: int
    clusters: int
    smalls: int

    @property
    def mbuf_count(self) -> int:
        return self.clusters + self.smalls

    @property
    def wasted_bytes(self) -> int:
        """Allocated but unused buffer space."""
        cap = self.clusters * MBUF_CLUSTER_BYTES + self.smalls * MBUF_SMALL_BYTES
        return cap - self.data_bytes

    def processing_us(self, cluster_us: float, small_us: float) -> float:
        """Per-chain handling cost: small mbufs cost more per byte held
        because they are copied (no reference counts)."""
        return self.clusters * cluster_us + self.smalls * small_us


def mbuf_chain_for(size: int) -> MbufChain:
    """The SunOS allocation rule of §7.3: fill 1 KB clusters; if the
    remainder is under 512 bytes it goes into 112-byte small mbufs,
    otherwise into one more (mostly-empty) cluster."""
    if size < 0:
        raise ValueError("negative packet size")
    if size == 0:
        return MbufChain(data_bytes=0, clusters=0, smalls=1)
    clusters, remainder = divmod(size, MBUF_CLUSTER_BYTES)
    if remainder == 0:
        return MbufChain(data_bytes=size, clusters=clusters, smalls=0)
    if remainder < SMALL_REMAINDER_LIMIT:
        smalls = -(-remainder // MBUF_SMALL_BYTES)
        return MbufChain(data_bytes=size, clusters=clusters, smalls=smalls)
    return MbufChain(data_bytes=size, clusters=clusters + 1, smalls=0)
