"""One TCP engine, two execution environments (§7.2, §7.7, §7.8).

The engine implements the protocol: three-way handshake, cumulative
acknowledgments, sliding windows with receiver-advertised flow control,
slow start / congestion avoidance, RTT estimation, and go-back-N
retransmission from ``snd_una``.

What differs between U-Net TCP and kernel TCP is the *environment*
(`TcpEnv` duck type): per-segment processing costs, the protocol timer
granularity (1 ms user timer vs. the BSD 500 ms ``pr_slow_timeout``),
the delayed-ack policy, and how segments reach the wire.  The paper's
§7.8 tuning discussion maps one-to-one onto :class:`TcpConfig` fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, List, Optional

from collections import deque

from repro import obs
from repro.obs import metrics as _metrics
from repro.ip.headers import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_RST,
    FLAG_SYN,
    TcpSegment,
)
from repro.sim import Event


@dataclass
class TcpConfig:
    """Protocol tunables (§7.8)."""

    #: Segment size: "The standard configuration for U-Net TCP uses
    #: 2048 byte segments" -- large segments risk whole-segment loss
    #: from single dropped cells (Romanow & Floyd).
    mss: int = 2048
    #: Receive buffer = advertised window.  U-Net TCP reaches full
    #: bandwidth with 8 KB; kernel TCP needs 64 KB and still falls short.
    window: int = 8192
    #: Send buffer bound (defaults to the window).
    sndbuf: Optional[int] = None
    #: Protocol timer granularity: 1 ms for U-Net TCP, 500 ms for the
    #: BSD kernel's pr_slow_timeout (§7.8).
    timer_granularity_us: float = 1000.0
    #: Delayed acknowledgments (up to 200 ms, every second packet).
    #: "In U-Net TCP it was possible to disable the delay mechanism."
    delayed_ack: bool = False
    delayed_ack_us: float = 200_000.0
    #: Initial slow-start threshold.
    initial_ssthresh: int = 64 * 1024
    #: Initial congestion window in segments.
    initial_cwnd_segments: int = 2

    @property
    def sndbuf_limit(self) -> int:
        return self.sndbuf if self.sndbuf is not None else self.window


class TcpConnection:
    """One endpoint of a TCP connection, driven by an environment.

    The environment must provide:

    * ``sim`` -- the simulator,
    * ``output_segment(seg: TcpSegment)`` -- generator: encapsulate in
      IP, charge the environment's costs, put it on the wire,
    * ``segment_cost_us(n_payload_bytes)`` -- generator charging the
      receive-side protocol processing for a segment.

    The environment calls ``handle(seg)`` (a generator) for every
    arriving segment.
    """

    def __init__(
        self,
        env,
        config: TcpConfig,
        src_port: int,
        dst_port: int,
        name: str = "tcp",
    ):
        self.env = env
        self.sim = env.sim
        self.cfg = config
        self.src_port = src_port
        self.dst_port = dst_port
        self.name = name
        # Built once: _timer_cb names the expiry process on the hot path.
        self._tmr_name = f"{name}.tmr"
        self.state = "CLOSED"
        # send side
        self.iss = 1000
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_wnd = config.window  # peer-advertised
        self.cwnd = config.mss * config.initial_cwnd_segments
        self.ssthresh = config.initial_ssthresh
        self._retx = bytearray()  # unacked bytes, base seq = snd_una
        self._sndq: Deque[bytes] = deque()
        self._sndq_bytes = 0
        self._fin_queued = False
        self._fin_sent = False
        # receive side
        self.rcv_nxt = 0
        self._rcvq: Deque[bytes] = deque()
        self._rcvq_bytes = 0
        self._fin_rcvd = False
        self._advertised = config.window
        #: right edge (ack + win) the peer last saw in an ACK we sent
        self._adv_right_edge = 0
        # RTT estimation (coarse ticks, like BSD)
        self.srtt_us: Optional[float] = None
        self.rttvar_us = 0.0
        self._rtt_seq: Optional[int] = None
        self._rtt_start = 0.0
        self._retx_deadline: Optional[float] = None
        self._delack_deadline: Optional[float] = None
        self._delack_count = 0
        self._dup_acks = 0
        #: the armed protocol timer, a cancellable pooled handle (or None)
        self._timer = None
        self._timer_firing = False
        # events
        self._established = Event(self.sim)
        self._rcv_waiters: List[Event] = []
        self._snd_waiters: List[Event] = []
        self._tx_wakeups: List[Event] = []
        # statistics (§7.4: visible to the application)
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmits = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.acks_sent = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.dropped_out_of_order = 0
        self._alive = True
        self.sim.process(self._sender_proc(), name=f"{name}.snd")
        # The protocol timer is armed lazily by _wake_timer: an idle
        # connection costs no heap entries at all.

    # ------------------------------------------------------------------ API
    def connect(self):
        """Active open: send SYN, wait for the handshake to complete."""
        if self.state != "CLOSED":
            raise RuntimeError(f"connect() in state {self.state}")
        self.state = "SYN_SENT"
        yield from self._emit(FLAG_SYN, seq=self.snd_nxt)
        self.snd_nxt += 1  # SYN consumes a sequence number
        self._retx_deadline = self.sim.now + self._rto()
        self._wake_timer()
        yield self._established
        return self

    def listen(self):
        """Passive open."""
        if self.state != "CLOSED":
            raise RuntimeError(f"listen() in state {self.state}")
        self.state = "LISTEN"

    def wait_established(self):
        yield self._established
        return self

    def send(self, data: bytes):
        """Queue application data, blocking on send-buffer space."""
        if self.state not in ("ESTABLISHED", "SYN_SENT", "SYN_RCVD"):
            raise RuntimeError(f"send() in state {self.state}")
        view = memoryview(data)
        while len(view):
            while self._sndq_bytes >= self.cfg.sndbuf_limit:
                event = Event(self.sim)
                self._snd_waiters.append(event)
                yield event
            room = self.cfg.sndbuf_limit - self._sndq_bytes
            chunk = bytes(view[:room])
            view = view[len(chunk):]
            self._sndq.append(chunk)
            self._sndq_bytes += len(chunk)
            self._wake_tx()

    def recv(self, max_bytes: int = 1 << 30):
        """Receive application data; returns b"" at EOF."""
        while not self._rcvq and not self._fin_rcvd:
            event = Event(self.sim)
            self._rcv_waiters.append(event)
            yield event
        if not self._rcvq and self._fin_rcvd:
            return b""
        parts: List[bytes] = []
        taken = 0
        while self._rcvq and taken < max_bytes:
            chunk = self._rcvq[0]
            if taken + len(chunk) <= max_bytes:
                parts.append(self._rcvq.popleft())
                taken += len(chunk)
            else:
                keep = max_bytes - taken
                parts.append(chunk[:keep])
                self._rcvq[0] = chunk[keep:]
                taken = max_bytes
        self._rcvq_bytes -= taken
        # §7.4: the advertised window directly reflects application
        # buffer space; opening it by an MSS (or half the buffer, for
        # buffers smaller than one segment) triggers an update.
        new_right_edge = self.rcv_nxt + (self.cfg.window - self._rcvq_bytes)
        threshold = min(2 * self.cfg.mss, max(1, self.cfg.window // 2))
        if new_right_edge - self._adv_right_edge >= threshold:
            yield from self._send_ack(force=True)
        return b"".join(parts)

    def close(self):
        """Queue a FIN after any pending data."""
        if self.state in ("CLOSED", "LISTEN"):
            self.state = "CLOSED"
            self._alive = False
            self._kill_timer()
            return
        self._fin_queued = True
        self._wake_tx()

    @property
    def rto_us(self) -> float:
        return self._rto()

    # --------------------------------------------------------------- sending
    def _flight(self) -> int:
        return self.snd_nxt - self.snd_una

    def _send_window(self) -> int:
        return min(self.snd_wnd, self.cwnd)

    def _wake_tx(self) -> None:
        waiters, self._tx_wakeups = self._tx_wakeups, []
        for event in waiters:
            event.succeed()

    _fast_retransmit_pending = False

    def _sender_proc(self):
        while self._alive:
            moved = False
            if self._fast_retransmit_pending:
                self._fast_retransmit_pending = False
                if len(self._retx):
                    # BSD fast retransmit: resend snd_una's segment and
                    # back off without waiting for the coarse timer
                    self.ssthresh = max(2 * self.cfg.mss, self._flight() // 2)
                    self.cwnd = self.cfg.mss
                    self.fast_retransmits += 1
                    self.retransmits += 1
                    _m = _metrics.active
                    if _m is not None:
                        _m.count("tcp.retransmits")
                    payload = bytes(self._retx[: self.cfg.mss])
                    yield from self._emit(FLAG_ACK, seq=self.snd_una, payload=payload)
                    self._retx_deadline = self.sim.now + self._rto()
                    self._wake_timer()
                    moved = True
            while (
                self.state == "ESTABLISHED"
                and self._sndq
                and self._flight() < self._send_window()
            ):
                budget = min(
                    self.cfg.mss, self._send_window() - self._flight()
                )
                payload = self._take_from_sndq(budget)
                if not payload:
                    break
                self._retx.extend(payload)
                seq = self.snd_nxt
                self.snd_nxt += len(payload)
                if self._rtt_seq is None:
                    self._rtt_seq = seq + len(payload)
                    self._rtt_start = self.sim.now
                yield from self._emit(FLAG_ACK, seq=seq, payload=payload)
                self.bytes_sent += len(payload)
                if self._retx_deadline is None:
                    self._retx_deadline = self.sim.now + self._rto()
                    self._wake_timer()
                moved = True
            if (
                self._fin_queued
                and not self._fin_sent
                and not self._sndq
                and self.state == "ESTABLISHED"
            ):
                self._fin_sent = True
                yield from self._emit(FLAG_FIN | FLAG_ACK, seq=self.snd_nxt)
                self.snd_nxt += 1
                self.state = "FIN_WAIT"
                if self._retx_deadline is None:
                    self._retx_deadline = self.sim.now + self._rto()
                    self._wake_timer()
            if not moved:
                event = Event(self.sim)
                self._tx_wakeups.append(event)
                yield event

    def _take_from_sndq(self, budget: int) -> bytes:
        parts: List[bytes] = []
        taken = 0
        while self._sndq and taken < budget:
            chunk = self._sndq[0]
            if taken + len(chunk) <= budget:
                parts.append(self._sndq.popleft())
                taken += len(chunk)
            else:
                keep = budget - taken
                parts.append(chunk[:keep])
                self._sndq[0] = chunk[keep:]
                taken = budget
        self._sndq_bytes -= taken
        if parts:
            waiters, self._snd_waiters = self._snd_waiters, []
            for event in waiters:
                event.succeed()
        return b"".join(parts)

    def _emit(self, flags: int, seq: int, payload: bytes = b""):
        self._advertised = self.cfg.window - self._rcvq_bytes
        seg = TcpSegment(
            src_port=self.src_port,
            dst_port=self.dst_port,
            seq=seq,
            ack=self.rcv_nxt if flags & FLAG_ACK else 0,
            flags=flags,
            # the wire field is 16 bits (no window-scaling option here)
            window=max(0, min(0xFFFF, self._advertised)),
            payload=payload,
        )
        self.segments_sent += 1
        _o = obs.active
        if _o is not None:
            _o.bump("tcp.segments_sent")
            if payload:
                _o.bump("tcp.bytes_sent", len(payload))
        if flags & FLAG_ACK:
            self._delack_count = 0
            self._delack_deadline = None
            self._adv_right_edge = self.rcv_nxt + seg.window
        yield from self.env.output_segment(seg)

    def _send_ack(self, force: bool = False):
        if self.cfg.delayed_ack and not force:
            # BSD: delay the ack of every second packet up to 200 ms.
            self._delack_count += 1
            if self._delack_count < 2:
                if self._delack_deadline is None:
                    self._delack_deadline = self.sim.now + self.cfg.delayed_ack_us
                    self._wake_timer()
                _m = _metrics.active
                if _m is not None:
                    _m.count("tcp.delayed_acks")
                return
        self.acks_sent += 1
        yield from self._emit(FLAG_ACK, seq=self.snd_nxt)

    # --------------------------------------------------------------- receive
    def handle(self, seg: TcpSegment):
        """Process an arriving segment (called by the environment)."""
        self.segments_received += 1
        _o = obs.active
        if _o is not None:
            _o.bump("tcp.segments_received")
            _o.sample(
                self.sim.now, f"{self.name}.cwnd", self.cwnd, host=self.name
            )
        yield from self.env.segment_cost_us(len(seg.payload))
        if seg.flag(FLAG_RST):
            self.state = "CLOSED"
            self._alive = False
            self._kill_timer()
            self._signal_receivers()
            return
        if self.state == "LISTEN" and seg.flag(FLAG_SYN):
            self.rcv_nxt = seg.seq + 1
            self.state = "SYN_RCVD"
            yield from self._emit(FLAG_SYN | FLAG_ACK, seq=self.snd_nxt)
            self.snd_nxt += 1
            self._retx_deadline = self.sim.now + self._rto()
            self._wake_timer()
            return
        if self.state == "SYN_SENT" and seg.flag(FLAG_SYN) and seg.flag(FLAG_ACK):
            self.rcv_nxt = seg.seq + 1
            self.snd_una = seg.ack
            self.snd_wnd = seg.window
            self.state = "ESTABLISHED"
            self._retx_deadline = None
            self._wake_timer()
            yield from self._send_ack(force=True)
            if not self._established.triggered:
                self._established.succeed()
            self._wake_tx()
            return
        if self.state == "SYN_RCVD" and seg.flag(FLAG_ACK) and seg.ack == self.snd_nxt:
            self.state = "ESTABLISHED"
            self.snd_una = seg.ack
            self.snd_wnd = seg.window
            self._retx_deadline = None
            self._wake_timer()
            if not self._established.triggered:
                self._established.succeed()
            self._wake_tx()
            if not seg.payload:
                return
        if self.state not in ("ESTABLISHED", "FIN_WAIT", "CLOSE_WAIT"):
            return
        # ---- ACK processing
        if seg.flag(FLAG_ACK):
            self._process_ack(seg)
        # ---- data
        if seg.payload:
            yield from self._process_data(seg)
        if seg.flag(FLAG_FIN) and seg.seq + len(seg.payload) == self.rcv_nxt:
            self.rcv_nxt += 1
            self._fin_rcvd = True
            if self.state == "FIN_WAIT":
                self.state = "CLOSED"
                self._alive = False
                self._kill_timer()
            else:
                self.state = "CLOSE_WAIT"
            self._signal_receivers()
            yield from self._send_ack(force=True)

    def _process_ack(self, seg: TcpSegment) -> None:
        self.snd_wnd = seg.window
        acked = seg.ack - self.snd_una
        if acked <= 0:
            if (
                acked == 0
                and self._flight() > 0
                and not seg.payload
                and not seg.flag(FLAG_SYN)
            ):
                # duplicate ack: the receiver is missing a segment
                self._dup_acks += 1
                if self._dup_acks == 3:
                    self._fast_retransmit_pending = True
                    self._wake_tx()
            self._wake_tx()  # window update may unblock the sender
            return
        self._dup_acks = 0
        data_acked = min(acked, len(self._retx))
        del self._retx[:data_acked]
        self.snd_una = seg.ack
        # RTT sample (Karn's rule: only if not retransmitted; we clear
        # the sample on retransmission)
        if self._rtt_seq is not None and seg.ack >= self._rtt_seq:
            self._update_rtt(self.sim.now - self._rtt_start)
            self._rtt_seq = None
        # congestion window growth
        if self.cwnd < self.ssthresh:
            self.cwnd += self.cfg.mss  # slow start
        else:
            self.cwnd += max(1, self.cfg.mss * self.cfg.mss // self.cwnd)
        acked_hook = getattr(self.env, "on_acked", None)
        if acked_hook is not None:
            acked_hook(self.snd_una)
        if self.snd_una == self.snd_nxt:
            self._retx_deadline = None
            if self.state == "FIN_WAIT" and self._fin_sent:
                self.state = "CLOSED"
                self._alive = False
            # everything acked: cancel (or retarget to a pending delack)
            self._wake_timer()
        else:
            self._retx_deadline = self.sim.now + self._rto()
            self._wake_timer()
        self._wake_tx()

    def _process_data(self, seg: TcpSegment):
        if seg.seq != self.rcv_nxt:
            # out of order (loss upstream): drop; cumulative ack will
            # trigger go-back-N at the sender
            self.dropped_out_of_order += 1
            yield from self._send_ack(force=True)  # duplicate ack
            return
        room = self.cfg.window - self._rcvq_bytes
        accept = seg.payload[:room]
        if not accept:
            yield from self._send_ack(force=True)
            return
        self.rcv_nxt += len(accept)
        self._rcvq.append(bytes(accept))
        self._rcvq_bytes += len(accept)
        self.bytes_received += len(accept)
        self._signal_receivers()
        yield from self._send_ack()

    def _signal_receivers(self) -> None:
        waiters, self._rcv_waiters = self._rcv_waiters, []
        for event in waiters:
            event.succeed()

    # ---------------------------------------------------------------- timers
    def _rto(self) -> float:
        g = self.cfg.timer_granularity_us
        if self.srtt_us is None:
            base = 2 * g
        else:
            base = self.srtt_us + max(4 * self.rttvar_us, g)
        # BSD rounds the retransmission timer up to timer ticks: with a
        # 500 ms pr_slow_timeout the rto dwarfs LAN round-trip times
        # (§7.8); U-Net's 1 ms granularity keeps it proportionate.
        ticks = max(2.0, -(-base // g))
        return ticks * g

    def _update_rtt(self, sample_us: float) -> None:
        if self.srtt_us is None:
            self.srtt_us = sample_us
            self.rttvar_us = sample_us / 2
        else:
            err = sample_us - self.srtt_us
            self.srtt_us += err / 8
            self.rttvar_us += (abs(err) - self.rttvar_us) / 4

    def _kill_timer(self) -> None:
        """Drop the armed timer, if any (O(1) — no tombstone event)."""
        h = self._timer
        if h is not None:
            self._timer = None
            h.cancel()

    def _wake_timer(self) -> None:
        """(Re-)arm the protocol timer for the earliest pending deadline.

        The timer fires on the next granularity boundary at or after the
        deadline, preserving the coarse-tick character of the BSD
        ``pr_slow_timeout`` (§7.8) without a free-running tick chain: an
        idle connection holds no schedule entry, and clearing the last
        deadline cancels the armed handle in O(1) instead of letting a
        stale tick discover it later.  A timer armed *earlier* than the
        current requirement is left in place — its callback finds no
        expired deadline and lazily re-arms, so ACKs that repeatedly
        push the retransmit deadline out cost no cancel/push churn."""
        if not self._alive:
            self._kill_timer()
            return
        if self._timer_firing:
            return  # _timer_fire re-arms once the handlers finish
        rd = self._retx_deadline
        dd = self._delack_deadline
        if rd is None:
            deadline = dd
        elif dd is None or rd < dd:
            deadline = rd
        else:
            deadline = dd
        h = self._timer
        if deadline is None:
            if h is not None:
                self._timer = None
                h.cancel()
            return
        g = self.cfg.timer_granularity_us
        now = self.sim.now
        ticks = max(1.0, -(-(deadline - now) // g))
        delay = ticks * g
        if h is not None:
            if h.when <= now + delay:
                return  # already fires early enough; it will re-arm
            self._timer = None
            h.cancel()
        self._timer = self.sim.schedule_timer(delay, self._timer_cb)

    def _timer_cb(self) -> None:
        """The armed timer fired (a bare callback, no process).

        Deadline checks are free; a generator process is spawned only
        when a deadline actually expired, since the expiry handlers
        consume simulated time."""
        # TimerHandle lifetime discipline: the engine recycled the handle
        # before invoking us -- drop our reference first.
        self._timer = None
        if not self._alive:
            return
        now = self.sim.now
        fire_delack = self._delack_deadline is not None and now >= self._delack_deadline
        fire_retx = self._retx_deadline is not None and now >= self._retx_deadline
        if fire_delack or fire_retx:
            self._timer_firing = True
            self.sim.process(
                self._timer_fire(now, fire_delack), name=self._tmr_name
            )
        else:
            # a deadline moved later since arming: lazy re-arm
            self._wake_timer()

    def _timer_fire(self, tick_now: float, fire_delack: bool):
        try:
            if fire_delack:
                self._delack_deadline = None
                yield from self._send_ack(force=True)
            # Re-read the retransmit deadline: the delayed-ack handler
            # yields, and incoming segments processed meanwhile may have
            # moved or cleared it (same re-check the tick loop had).
            if self._retx_deadline is not None and tick_now >= self._retx_deadline:
                yield from self._on_rto()
        finally:
            self._timer_firing = False
        self._wake_timer()

    def _on_rto(self):
        self.timeouts += 1
        self._rtt_seq = None  # Karn: invalidate RTT sample
        if self.state == "SYN_SENT":
            yield from self._emit(FLAG_SYN, seq=self.iss)
            self._retx_deadline = self.sim.now + self._rto()
            self._wake_timer()
            return
        if self.state == "SYN_RCVD":
            yield from self._emit(FLAG_SYN | FLAG_ACK, seq=self.snd_nxt - 1)
            self._retx_deadline = self.sim.now + self._rto()
            self._wake_timer()
            return
        flight = self._flight()
        if flight <= 0 and not self._fin_sent:
            self._retx_deadline = None
            return
        # congestion response: multiplicative decrease + slow start
        self.ssthresh = max(2 * self.cfg.mss, flight // 2)
        self.cwnd = self.cfg.mss
        # go-back-N: retransmit the first outstanding segment
        _o = obs.active
        _m = _metrics.active
        if len(self._retx):
            payload = bytes(self._retx[: self.cfg.mss])
            self.retransmits += 1
            if _o is not None:
                _o.bump("tcp.retransmits")
            if _m is not None:
                _m.count("tcp.retransmits")
            yield from self._emit(FLAG_ACK, seq=self.snd_una, payload=payload)
        elif self._fin_sent:
            self.retransmits += 1
            if _o is not None:
                _o.bump("tcp.retransmits")
            if _m is not None:
                _m.count("tcp.retransmits")
            yield from self._emit(FLAG_FIN | FLAG_ACK, seq=self.snd_nxt - 1)
        self._retx_deadline = self.sim.now + self._rto()
        self._wake_timer()
