"""User-level TCP/UDP/IP over a U-Net channel (§7.1, §7.5-§7.7).

One U-Net channel carries all IP traffic between two applications
(§7.1: the secure multiplexor cannot yet share one VCI among channels,
so this matches the paper's test setup).  The stack runs entirely in
the application's address space: header composition in the
communication segment, checksum combined with the copy (§7.6), a
per-channel PCB cache for UDP demultiplexing, and the TCP engine with
1 ms timers and delayed acks disabled (§7.8).

IP functionality follows §7.5: liberal receive, no send-side
fragmentation (MTU 9 KB), no forwarding, ARP/ICMP not ported.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro import obs
from repro.core import SendDescriptor, UNetSession
from repro.core.errors import UNetError
from repro.ip.headers import (
    IP_HEADER_SIZE,
    PROTO_TCP,
    PROTO_UDP,
    IpDatagram,
    TcpSegment,
    UdpPacket,
)
from repro.ip.tcp import TcpConfig, TcpConnection
from repro.sim import Event

#: §7.5: "IP over U-Net exports an MTU of 9Kbytes".
UNET_IP_MTU = 9 * 1024

#: IP-over-U-Net uses bare IP framing on the channel -- §7.1 notes the
#: implementation is *not* wire-compatible with Classical IP over ATM
#: (RFC 1577 LLC/SNAP); that keeps 40-byte TCP acks within a single cell,
#: which §7.8 relies on ("handled efficiently by single-cell reception").


@dataclass
class UnetIpCosts:
    """User-level protocol processing costs (60 MHz reference)."""

    ip_out_us: float = 1.2
    ip_in_us: float = 1.5
    udp_out_us: float = 3.0
    #: §7.6: "A simple pcb caching scheme per incoming channel allows
    #: for significant processing speedups."
    udp_in_hit_us: float = 2.0
    udp_in_miss_us: float = 6.0
    tcp_out_us: float = 6.0
    tcp_in_us: float = 6.5
    #: header-prediction fast path for pure acknowledgments (§7.8: a
    #: 40-byte TCP/IP header handled by single-cell reception)
    tcp_ack_us: float = 2.0


class UnetIpStack:
    """Per-process IP stack bound to one U-Net session."""

    def __init__(
        self,
        session: UNetSession,
        addr: int,
        costs: Optional[UnetIpCosts] = None,
        recv_buffers: int = 48,
    ):
        self.session = session
        self.host = session.host
        self.sim = session.host.sim
        self.addr = addr
        self.costs = costs if costs is not None else UnetIpCosts()
        self._routes: Dict[int, int] = {}  # peer addr -> channel id
        self._channel_peer: Dict[int, int] = {}
        self._udp_sockets: Dict[int, "UnetUdpSocket"] = {}
        self._tcp_conns: Dict[Tuple[int, int], TcpConnection] = {}
        self._tcp_listeners: Dict[int, TcpConnection] = {}
        #: §7.1 extension: connections bound to an exclusive channel skip
        #: port demultiplexing entirely (channel id -> connection)
        self._tcp_channel_conns: Dict[int, TcpConnection] = {}
        self._pcb_cache: Dict[Tuple[int, int], "UnetUdpSocket"] = {}
        self.tcp_channel_demux_hits = 0
        self._recv_buffers = recv_buffers
        self._next_port = 30000
        self.pcb_hits = 0
        self.pcb_misses = 0
        self.packets_in = 0
        self.packets_out = 0
        self.bad_packets = 0
        self._started = False

    def start(self):
        """Provide receive buffers and start the receive pump."""
        if self._started:
            return
        self._started = True
        yield from self.session.provide_receive_buffers(self._recv_buffers, size=4160)
        self.sim.process(self._pump(), name=f"ipstack.{self.addr}.pump")

    def add_peer(self, peer_addr: int, channel_id: int) -> None:
        """Route all IP traffic for ``peer_addr`` over ``channel_id``."""
        self._routes[peer_addr] = channel_id
        self._channel_peer[channel_id] = peer_addr

    # ------------------------------------------------------------ UDP API
    def udp_socket(self, port: Optional[int] = None) -> "UnetUdpSocket":
        if port is None:
            port = self._next_port
            self._next_port += 1
        if port in self._udp_sockets:
            raise UNetError(f"UDP port {port} already bound")
        sock = UnetUdpSocket(self, port)
        self._udp_sockets[port] = sock
        return sock

    # ------------------------------------------------------------ TCP API
    def tcp_connect(
        self, peer_addr: int, port: int, local_port: Optional[int] = None,
        config: Optional[TcpConfig] = None, channel_id: Optional[int] = None,
    ):
        """Generator: active open; returns the established connection.

        ``channel_id`` binds the connection to an exclusive U-Net
        channel (the §7.1 alternative: 'an exclusive U-Net channel per
        TCP connection ... would be simple to implement').
        """
        local_port = local_port or self._alloc_port()
        env = _UnetTcpEnv(self, peer_addr, channel_id=channel_id)
        conn = TcpConnection(
            env, config if config is not None else TcpConfig(),
            src_port=local_port, dst_port=port,
            name=f"tcp.{self.addr}:{local_port}",
        )
        self._tcp_conns[(local_port, port)] = conn
        if channel_id is not None:
            self._tcp_channel_conns[channel_id] = conn
        yield from conn.connect()
        return conn

    def tcp_listen(
        self, port: int, peer_addr: int, config: Optional[TcpConfig] = None,
        channel_id: Optional[int] = None,
    ) -> TcpConnection:
        """Passive open on ``port`` (peer known a priori: no ARP here)."""
        env = _UnetTcpEnv(self, peer_addr, channel_id=channel_id)
        conn = TcpConnection(
            env, config if config is not None else TcpConfig(),
            src_port=port, dst_port=0,
            name=f"tcp.{self.addr}:{port}",
        )
        conn.listen()
        self._tcp_listeners[port] = conn
        if channel_id is not None:
            self._tcp_channel_conns[channel_id] = conn
        return conn

    def _alloc_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        return port

    # ------------------------------------------------------------- output
    def send_ip(self, peer_addr: int, proto: int, payload: bytes,
                channel_id: Optional[int] = None):
        if IP_HEADER_SIZE + len(payload) > UNET_IP_MTU:
            # §7.5: no send-side fragmentation, by design.
            raise UNetError(
                f"datagram of {len(payload)} bytes exceeds the 9 KB U-Net "
                "IP MTU and send-side fragmentation is unsupported (§7.5)"
            )
        channel = channel_id if channel_id is not None else self._routes.get(peer_addr)
        if channel is None:
            raise UNetError(f"no route to host {peer_addr}")
        raw = IpDatagram(
            src=self.addr, dst=peer_addr, proto=proto, payload=payload
        ).encode()
        _o = obs.active
        _sp = (
            _o.begin(self.sim.now, "ip_out", "ip", host=self.host.name)
            if _o is not None
            else None
        )
        yield from self.host.compute(self.costs.ip_out_us)
        offset = self.session.alloc(len(raw))
        try:
            yield from self.session.write_segment(offset, raw)
            desc = SendDescriptor(channel=channel, bufs=((offset, len(raw)),))
            yield from self.session.send(desc)
        except Exception:
            # the datagram never reached the ring: reclaim now, since no
            # completion will ever fire for it
            self.session.free(offset, len(raw))
            raise
        if _sp is not None:
            _o.annotate(_sp, bytes=len(raw), proto=proto)
            _o.end(_sp, self.sim.now)
        self.packets_out += 1
        self.sim.process(self._reclaim(desc, offset, len(raw)))

    def _reclaim(self, desc, offset, length):
        yield self.session.endpoint.wait_send_complete(desc)
        self.session.free(offset, length)

    def send_gathered(self, peer_addr: int, bufs, channel_id: Optional[int] = None):
        """Send an IP packet already composed in the segment as a
        scatter-gather list (§7.3's zero-copy network-buffer path).
        Returns the descriptor so the caller can track injection."""
        channel = channel_id if channel_id is not None else self._routes.get(peer_addr)
        if channel is None:
            raise UNetError(f"no route to host {peer_addr}")
        desc = SendDescriptor(channel=channel, bufs=tuple(bufs))
        yield from self.session.send(desc)
        self.packets_out += 1
        return desc

    # ------------------------------------------------------------- input
    def _pump(self):
        while True:
            desc = yield from self.session.recv()
            _o = obs.active
            _sp = (
                _o.begin(self.sim.now, "ip_in", "ip", host=self.host.name)
                if _o is not None
                else None
            )
            try:
                raw = self.session.peek_payload(desc)
                if not desc.is_inline:
                    yield from self.session.repost_free(desc)
                self.packets_in += 1
                yield from self.host.compute(self.costs.ip_in_us)
                try:
                    dgram = IpDatagram.decode(raw)
                except ValueError:
                    self.bad_packets += 1
                    continue
                if dgram.proto == PROTO_UDP:
                    yield from self._deliver_udp(desc.channel, dgram)
                elif dgram.proto == PROTO_TCP:
                    yield from self._deliver_tcp(dgram, channel_id=desc.channel)
                else:
                    self.bad_packets += 1
            finally:
                if _sp is not None:
                    _o.end(_sp, self.sim.now)

    def _deliver_udp(self, channel_id: int, dgram: IpDatagram):
        try:
            packet = UdpPacket.decode(dgram.payload)
        except ValueError:
            self.bad_packets += 1
            return
        key = (channel_id, packet.dst_port)
        _o = obs.active
        _sp = (
            _o.begin(self.sim.now, "udp_in", "udp", host=self.host.name)
            if _o is not None
            else None
        )
        try:
            sock = self._pcb_cache.get(key)
            if sock is not None and sock.port == packet.dst_port:
                self.pcb_hits += 1
                yield from self.host.compute(self.costs.udp_in_hit_us)
            else:
                self.pcb_misses += 1
                yield from self.host.compute(self.costs.udp_in_miss_us)
                sock = self._udp_sockets.get(packet.dst_port)
                if sock is None:
                    self.bad_packets += 1
                    return
                self._pcb_cache[key] = sock
            if packet.with_checksum:
                # §7.6: checksum "can be combined with the copy operation" --
                # charge only the checksum's share here.
                yield from self.host.checksum(len(packet.payload))
            sock._deliver(dgram.src, packet)
        finally:
            if _sp is not None:
                _o.end(_sp, self.sim.now)

    def _deliver_tcp(self, dgram: IpDatagram, channel_id: Optional[int] = None):
        try:
            seg = TcpSegment.decode(dgram.payload)
        except ValueError:
            self.bad_packets += 1
            return
        if channel_id is not None and channel_id in self._tcp_channel_conns:
            # §7.1 extension: the channel IS the demultiplexing key --
            # U-Net's mux already did the work, no port lookup needed
            self.tcp_channel_demux_hits += 1
            conn = self._tcp_channel_conns[channel_id]
            if conn.state == "LISTEN":
                conn.dst_port = seg.src_port
                self._tcp_conns[(conn.src_port, seg.src_port)] = conn
            yield from conn.handle(seg)
            return
        conn = self._tcp_conns.get((seg.dst_port, seg.src_port))
        if conn is None:
            listener = self._tcp_listeners.get(seg.dst_port)
            if listener is not None:
                # promote the listener to a full connection
                listener.dst_port = seg.src_port
                self._tcp_conns[(seg.dst_port, seg.src_port)] = listener
                conn = listener
        if conn is None:
            self.bad_packets += 1
            return
        yield from conn.handle(seg)


class UnetUdpSocket:
    """A user-level UDP socket (§7.6)."""

    def __init__(self, stack: UnetIpStack, port: int):
        self.stack = stack
        self.port = port
        self.checksum_enabled = True
        self._queue: Deque[Tuple[int, UdpPacket]] = deque()
        self._waiters = []
        self.received = 0

    def sendto(self, data: bytes, dest: Tuple[int, int]):
        """Generator: send ``data`` to (host_addr, port)."""
        peer_addr, port = dest
        costs = self.stack.costs
        _o = obs.active
        _sp = (
            _o.begin(self.stack.sim.now, "udp_out", "udp", host=self.stack.host.name)
            if _o is not None
            else None
        )
        yield from self.stack.host.compute(costs.udp_out_us)
        if self.checksum_enabled:
            yield from self.stack.host.checksum(len(data))
        packet = UdpPacket(
            src_port=self.port, dst_port=port, payload=data,
            with_checksum=self.checksum_enabled,
        )
        yield from self.stack.send_ip(peer_addr, PROTO_UDP, packet.encode())
        if _sp is not None:
            _o.annotate(_sp, bytes=len(data))
            _o.end(_sp, self.stack.sim.now)

    def recvfrom(self):
        """Generator: wait for a datagram; returns (data, (addr, port))."""
        while not self._queue:
            event = Event(self.stack.sim)
            self._waiters.append(event)
            yield event
        src, packet = self._queue.popleft()
        return packet.payload, (src, packet.src_port)

    def poll(self) -> Optional[Tuple[bytes, Tuple[int, int]]]:
        if not self._queue:
            return None
        src, packet = self._queue.popleft()
        return packet.payload, (src, packet.src_port)

    def _deliver(self, src: int, packet: UdpPacket) -> None:
        self._queue.append((src, packet))
        self.received += 1
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()


class _UnetTcpEnv:
    """TCP engine environment for the user-level stack.

    Data blocks live in reference-counted segment buffers (§7.3): the
    retransmission queue holds one reference and each in-flight
    descriptor another, so a retransmission re-posts the *same* buffer
    -- scatter-gathered behind a freshly built header -- with no copy.
    """

    HEADER_ROOM = 64

    def __init__(self, stack: UnetIpStack, peer_addr: int, pool_buffers: int = 24,
                 channel_id: Optional[int] = None):
        from repro.ip.bufpool import SegmentBufferPool

        self.stack = stack
        self.peer_addr = peer_addr
        self.channel_id = channel_id  # exclusive per-connection channel (§7.1)
        self.sim = stack.sim
        self._pool: Optional[SegmentBufferPool] = None
        self._pool_buffers = pool_buffers
        self._headers: Optional[SegmentBufferPool] = None
        self._inflight: Dict[Tuple[int, int], object] = {}  # (seq, len) -> RefBuffer
        self.zero_copy_retransmits = 0
        self.pool_fallbacks = 0

    def _pools(self, mss: int):
        from repro.ip.bufpool import SegmentBufferPool

        if self._pool is None:
            self._pool = SegmentBufferPool(
                self.stack.session, self._pool_buffers, mss + self.HEADER_ROOM
            )
            self._headers = SegmentBufferPool(
                self.stack.session, self._pool_buffers, self.HEADER_ROOM
            )
        return self._pool, self._headers

    def output_segment(self, seg: TcpSegment):
        _o = obs.active
        _sp = (
            _o.begin(self.sim.now, "tcp_out", "tcp", host=self.stack.host.name)
            if _o is not None
            else None
        )
        try:
            yield from self._output_segment(seg)
        finally:
            if _sp is not None:
                _o.annotate(_sp, bytes=len(seg.payload))
                _o.end(_sp, self.sim.now)

    def _output_segment(self, seg: TcpSegment):
        if not seg.payload:
            yield from self.stack.host.compute(self.stack.costs.tcp_ack_us)
            yield from self.stack.send_ip(
                self.peer_addr, PROTO_TCP, seg.encode(),
                channel_id=self.channel_id,
            )
            return
        yield from self.stack.host.compute(self.stack.costs.tcp_out_us)
        yield from self.stack.host.checksum(len(seg.payload))
        pool, headers = self._pools(max(2048, len(seg.payload)))
        key = (seg.seq, len(seg.payload))
        data_buf = self._inflight.get(key)
        header_buf = headers.try_acquire()
        if header_buf is None or (data_buf is None and pool.available == 0):
            # buffer pool exhausted: classic copy path
            if header_buf is not None:
                header_buf.decref()
            self.pool_fallbacks += 1
            yield from self.stack.send_ip(
                self.peer_addr, PROTO_TCP, seg.encode(),
                channel_id=self.channel_id,
            )
            return
        raw = IpDatagram(
            src=self.stack.addr, dst=self.peer_addr, proto=PROTO_TCP,
            payload=seg.encode(),
        ).encode()
        header_len = IP_HEADER_SIZE + 20  # IP + TCP headers
        yield from header_buf.fill(self.stack.session, raw[:header_len])
        if data_buf is None:
            data_buf = pool.try_acquire()
            yield from data_buf.fill(self.stack.session, seg.payload)
            self._inflight[key] = data_buf  # retransmission-queue reference
        else:
            # retransmission: the data is already in the segment
            self.zero_copy_retransmits += 1
        data_buf.incref()  # in-flight reference
        desc = yield from self.stack.send_gathered(
            self.peer_addr,
            [(header_buf.offset, header_len), (data_buf.offset, data_buf.length)],
            channel_id=self.channel_id,
        )
        self.sim.process(self._after_injection(desc, header_buf, data_buf))

    def _after_injection(self, desc, header_buf, data_buf):
        yield self.stack.session.endpoint.wait_send_complete(desc)
        header_buf.decref()
        data_buf.decref()

    def on_acked(self, snd_una: int) -> None:
        """Engine hook: drop the retransmission-queue references of
        fully acknowledged segments."""
        for key in [k for k in self._inflight if k[0] + k[1] <= snd_una]:
            self._inflight.pop(key).decref()

    def segment_cost_us(self, payload_bytes: int):
        _o = obs.active
        _sp = (
            _o.begin(self.sim.now, "tcp_in", "tcp", host=self.stack.host.name)
            if _o is not None
            else None
        )
        if payload_bytes:
            yield from self.stack.host.compute(self.stack.costs.tcp_in_us)
            yield from self.stack.host.checksum(payload_bytes)
        else:
            yield from self.stack.host.compute(self.stack.costs.tcp_ack_us)
        if _sp is not None:
            _o.annotate(_sp, bytes=payload_bytes)
            _o.end(_sp, self.sim.now)
