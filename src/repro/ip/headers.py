"""IP, UDP, and TCP headers -- real bytes, real checksums.

Addresses are single bytes (host index within the cluster); everything
else follows the classic layouts closely enough that checksums,
demultiplexing, and corruption detection behave like the originals.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.atm.crc import internet_checksum

IP_HEADER_SIZE = 20
UDP_HEADER_SIZE = 8
TCP_HEADER_SIZE = 20

PROTO_TCP = 6
PROTO_UDP = 17

_IP = struct.Struct(">BBHHHBBHII")
_UDP = struct.Struct(">HHHH")
_TCP = struct.Struct(">HHIIBBHHH")

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10


@dataclass
class IpDatagram:
    src: int
    dst: int
    proto: int
    payload: bytes
    ttl: int = 64

    def encode(self) -> bytes:
        total = IP_HEADER_SIZE + len(self.payload)
        header = _IP.pack(
            0x45, 0, total, 0, 0, self.ttl, self.proto, 0, self.src, self.dst
        )
        csum = internet_checksum(header)
        header = header[:10] + struct.pack(">H", csum) + header[12:]
        return header + self.payload

    @classmethod
    def decode(cls, raw: bytes) -> "IpDatagram":
        if len(raw) < IP_HEADER_SIZE:
            raise ValueError("short IP datagram")
        (vhl, _tos, total, _id, _frag, ttl, proto, _csum, src, dst) = _IP.unpack(
            raw[:IP_HEADER_SIZE]
        )
        if vhl != 0x45:
            raise ValueError(f"bad IP version/header length 0x{vhl:02x}")
        if internet_checksum(raw[:IP_HEADER_SIZE]) != 0:
            raise ValueError("IP header checksum failure")
        if total > len(raw):
            raise ValueError("truncated IP datagram")
        return cls(
            src=src, dst=dst, proto=proto, ttl=ttl,
            payload=raw[IP_HEADER_SIZE:total],
        )


@dataclass
class UdpPacket:
    src_port: int
    dst_port: int
    payload: bytes
    #: §7.6: the checksum "can be switched off by applications that use
    #: data protection at a higher level".
    with_checksum: bool = True

    def encode(self) -> bytes:
        length = UDP_HEADER_SIZE + len(self.payload)
        header = _UDP.pack(self.src_port, self.dst_port, length, 0)
        if self.with_checksum:
            csum = internet_checksum(header + self.payload)
            csum = csum or 0xFFFF  # 0 means "no checksum" on the wire
            header = header[:6] + struct.pack(">H", csum)
        return header + self.payload

    @classmethod
    def decode(cls, raw: bytes) -> "UdpPacket":
        if len(raw) < UDP_HEADER_SIZE:
            raise ValueError("short UDP packet")
        src_port, dst_port, length, csum = _UDP.unpack(raw[:UDP_HEADER_SIZE])
        if length > len(raw):
            raise ValueError("truncated UDP packet")
        body = raw[UDP_HEADER_SIZE:length]
        if csum != 0:
            # One's-complement property: a valid packet sums to zero
            # when the checksum field is included.
            computed = internet_checksum(raw[:length])
            if computed != 0 and not (
                csum == 0xFFFF and internet_checksum(raw[:6] + b"\x00\x00" + body) == 0
            ):
                raise ValueError("UDP checksum failure")
        return cls(
            src_port=src_port, dst_port=dst_port, payload=body,
            with_checksum=csum != 0,
        )


@dataclass
class TcpSegment:
    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    payload: bytes = b""

    def encode(self) -> bytes:
        header = _TCP.pack(
            self.src_port, self.dst_port, self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF, (5 << 4), self.flags, self.window, 0, 0,
        )
        csum = internet_checksum(header + self.payload)
        header = header[:16] + struct.pack(">H", csum) + header[18:]
        return header + self.payload

    @classmethod
    def decode(cls, raw: bytes) -> "TcpSegment":
        if len(raw) < TCP_HEADER_SIZE:
            raise ValueError("short TCP segment")
        (src, dst, seq, ack, offs, flags, window, csum, _urg) = _TCP.unpack(
            raw[:TCP_HEADER_SIZE]
        )
        header_len = (offs >> 4) * 4
        body = raw[header_len:]
        check = raw[:16] + b"\x00\x00" + raw[18:header_len] + body
        if internet_checksum(check) != csum:
            raise ValueError("TCP checksum failure")
        return cls(
            src_port=src, dst_port=dst, seq=seq, ack=ack, flags=flags,
            window=window, payload=body,
        )

    def flag(self, bit: int) -> bool:
        return bool(self.flags & bit)

    def describe(self) -> str:
        names = [
            name
            for bit, name in [
                (FLAG_SYN, "SYN"), (FLAG_ACK, "ACK"), (FLAG_FIN, "FIN"),
                (FLAG_RST, "RST"), (FLAG_PSH, "PSH"),
            ]
            if self.flags & bit
        ]
        return (
            f"TCP {self.src_port}->{self.dst_port} {'|'.join(names) or '-'} "
            f"seq={self.seq} ack={self.ack} win={self.window} len={len(self.payload)}"
        )
