"""Reference-counted network buffers in the communication segment (§7.3).

"Base-level U-Net provides a scatter-gather message mechanism to
support efficient construction of network buffers.  The data blocks are
allocated within the receive and transmit communication segments and a
simple reference count mechanism added by the TCP and UDP support
software allows them to be shared by several messages without the need
for copy operations."

A :class:`SegmentBufferPool` hands out :class:`RefBuffer` blocks inside
a session's segment.  A reliable protocol pins a buffer (one reference
for the in-flight descriptor, one for the retransmission queue) and the
block is returned to the pool only when every reference drops -- so a
retransmission re-posts the *same* buffer with no copy, which is
exactly the optimization §2.3 says user-level buffer management makes
possible.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core import SendDescriptor, UNetSession
from repro.core.errors import UNetError
from repro.sim import engine as _engine


class RefBuffer:
    """A pinned block in the communication segment with a refcount."""

    def __init__(self, pool: "SegmentBufferPool", offset: int, capacity: int):
        self.pool = pool
        self.offset = offset
        self.capacity = capacity
        self.length = 0  # bytes currently valid
        self.refs = 0

    def incref(self) -> "RefBuffer":
        if self.refs <= 0:
            raise UNetError("incref on a released buffer")
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"refbuf@{self.offset}", "w")
        self.refs += 1
        return self

    def decref(self) -> None:
        if self.refs <= 0:
            raise UNetError("decref below zero")
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), f"refbuf@{self.offset}", "w")
        self.refs -= 1
        if self.refs == 0:
            self.pool._release(self)

    def descriptor(self, channel: int) -> SendDescriptor:
        """A send descriptor pointing at this buffer (no copy)."""
        return SendDescriptor(channel=channel, bufs=((self.offset, self.length),))

    def fill(self, session: UNetSession, data: bytes):
        """Copy ``data`` into the buffer (the one unavoidable copy)."""
        if len(data) > self.capacity:
            raise UNetError(
                f"data of {len(data)} bytes exceeds buffer capacity {self.capacity}"
            )
        self.length = len(data)
        yield from session.write_segment(self.offset, data)

    def peek(self, session: UNetSession) -> bytes:
        return session.peek_segment(self.offset, self.length)


class SegmentBufferPool:
    """Fixed-size pool of reference-counted buffers in one segment."""

    def __init__(self, session: UNetSession, count: int, size: int):
        if count < 1 or size < 1:
            raise ValueError("pool needs at least one buffer of positive size")
        self.session = session
        self.size = size
        self._free: List[RefBuffer] = [
            RefBuffer(self, session.alloc(size), size) for _ in range(count)
        ]
        self.total = count
        self.acquires = 0
        self.exhaustions = 0

    @property
    def available(self) -> int:
        return len(self._free)

    def try_acquire(self) -> Optional[RefBuffer]:
        """Take a buffer with refcount 1, or None when exhausted."""
        if _engine.access_hook is not None:
            _engine.access_hook(
                id(self), "bufpool", "w" if self._free else "r"
            )
        if not self._free:
            self.exhaustions += 1
            return None
        buffer = self._free.pop()
        buffer.refs = 1
        buffer.length = 0
        self.acquires += 1
        return buffer

    def _release(self, buffer: RefBuffer) -> None:
        if _engine.access_hook is not None:
            _engine.access_hook(id(self), "bufpool", "w")
        self._free.append(buffer)
