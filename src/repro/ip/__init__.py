"""TCP/UDP/IP over U-Net, plus the in-kernel BSD baseline (§7).

The protocol *code* (headers, checksums, the TCP engine) is shared
between the two environments, reflecting the paper's §7.2 point that
TCP/IP's problems "usually lie in the particular implementations and
their integration into the operating system and not with the protocols
themselves":

* :mod:`repro.ip.unet` -- user-level UDP and TCP over a U-Net channel
  (one channel carries all IP traffic between two applications, §7.1).
* :mod:`repro.ip.kernel` -- the SunOS-style kernel path: system calls,
  mbuf chains (1 KB clusters + 112-byte small mbufs), bounded socket
  buffers (52 KB), a device output queue that drops on overload, and
  the vendor Fore driver/firmware -- over ATM or 10 Mbit/s Ethernet.
* :mod:`repro.ip.tcp` -- one TCP engine with two integrations.
"""

from repro.ip.ethernet import ETHERNET_MTU, EthernetLan
from repro.ip.headers import (
    IP_HEADER_SIZE,
    TCP_HEADER_SIZE,
    UDP_HEADER_SIZE,
    IpDatagram,
    TcpSegment,
    UdpPacket,
)
from repro.ip.kernel import KernelCosts, KernelStack
from repro.ip.mbuf import MbufChain, mbuf_chain_for
from repro.ip.tcp import TcpConfig, TcpConnection
from repro.ip.unet import UnetIpStack

__all__ = [
    "ETHERNET_MTU",
    "EthernetLan",
    "IP_HEADER_SIZE",
    "IpDatagram",
    "KernelCosts",
    "KernelStack",
    "MbufChain",
    "TCP_HEADER_SIZE",
    "TcpConfig",
    "TcpConnection",
    "TcpSegment",
    "UDP_HEADER_SIZE",
    "UdpPacket",
    "UnetIpStack",
    "mbuf_chain_for",
]
